// Job model of the service layer: what a client submits (JobSpec), where a
// job is in its lifecycle (JobStatus), and what the scheduler reports back
// per job (JobReport — the service-mode analogue of one run's summary
// line, carrying the leased core set and queue/run accounting).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "engine/result.hpp"

namespace ramr::service {

using JobId = std::uint64_t;

enum class JobStatus {
  kQueued,     // admitted, waiting for cores or a dispatch slot
  kRunning,    // executing on a leased core set
  kDone,       // body returned normally
  kFailed,     // body threw (deadline, worker failure, app error)
  kCancelled,  // external cancel (Scheduler::cancel or shutdown) won
  kRejected,   // admission control refused it (queue full, impossible cores)
};

inline const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kDone:
      return "done";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kCancelled:
      return "cancelled";
    case JobStatus::kRejected:
      return "rejected";
  }
  return "?";
}

inline bool terminal(JobStatus status) {
  return status == JobStatus::kDone || status == JobStatus::kFailed ||
         status == JobStatus::kCancelled || status == JobStatus::kRejected;
}

struct JobSpec {
  std::string name;

  // Cores to lease (0 = the scheduler's fair share: total / max jobs).
  // A request beyond the topology is rejected at submission.
  std::size_t cores = 0;

  // Per-job runtime knobs; resolved against the *leased* sub-topology, so
  // worker counts left at 0 derive from the lease size, not the machine.
  RuntimeConfig config;

  // Per-job wall-clock budget forwarded to the run watchdog (0 = none).
  std::size_t deadline_ms = 0;
};

struct JobReport {
  JobId id = 0;
  std::string name;
  JobStatus status = JobStatus::kQueued;

  // The disjoint core set this job ran on (empty when never dispatched).
  std::vector<std::size_t> cores;

  double queued_seconds = 0.0;  // submit -> dispatch
  double run_seconds = 0.0;     // dispatch -> terminal

  // True when the job's last run executed on a warm pool set (leased from
  // the scheduler's depot without spawning threads).
  bool warm_pools = false;

  // RunResult accounting of the job's last run (empty when it never ran).
  std::string run_summary;
  engine::PlanInfo plan;

  // Failure/rejection detail ("" when the job succeeded).
  std::string error;

  std::string describe() const {
    std::string s = "job=" + (name.empty() ? "?" : name) +
                    " id=" + std::to_string(id) +
                    " status=" + to_string(status);
    if (!cores.empty()) {
      s += " cores=[";
      for (std::size_t i = 0; i < cores.size(); ++i) {
        if (i > 0) s += ",";
        s += std::to_string(cores[i]);
      }
      s += "]";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), " wait=%.3fs run=%.3fs", queued_seconds,
                  run_seconds);
    s += buf;
    s += std::string(" warm=") + (warm_pools ? "yes" : "no");
    if (!error.empty()) s += " error=" + error;
    return s;
  }
};

}  // namespace ramr::service
