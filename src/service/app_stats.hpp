// Per-app statistics for the scheduler's resilience features (an "app" is
// a JobSpec.name — one tenant workload submitted repeatedly).
//
// Two signals live here:
//
//   * an EWMA of successful run times — the hedging threshold ("this job
//     has run P× longer than this app usually takes; launch a hedge");
//   * a consecutive-failure streak driving a per-app circuit breaker —
//     after K final failures in a row the breaker opens and submissions
//     for the app fast-fail (kRejected) instead of burning cores on a
//     workload that is currently broken. After a cooldown the breaker
//     half-opens: the next submission is admitted as a trial, and its
//     outcome closes the breaker (success) or re-opens it (failure).
//
// Not thread-safe on purpose: the Scheduler is the only writer and guards
// every call with its own mutex.
#pragma once

#include <chrono>
#include <cstddef>
#include <map>
#include <string>

#include "common/timing.hpp"

namespace ramr::service {

class AppStats {
 public:
  enum class Breaker { kClosed, kOpen, kHalfOpen };

  struct App {
    // EWMA of successful (kDone, non-hedge) run times; samples counts the
    // successes folded in, so callers can require a minimum history before
    // trusting the estimate.
    double ewma_seconds = 0.0;
    std::size_t samples = 0;

    std::size_t consecutive_failures = 0;
    Breaker breaker = Breaker::kClosed;
    Clock::time_point open_until{};
  };

  // Breaker admission check for one submission. Always true when the
  // breaker is disabled (k == 0) or closed. An open breaker rejects until
  // `open_until`, then transitions to half-open and admits the caller as
  // the trial submission.
  bool admit(const std::string& app, std::size_t breaker_k,
             Clock::time_point now);

  // A job of `app` reached kDone: resets the failure streak, closes the
  // breaker, and folds `run_seconds` into the EWMA (alpha = 0.3).
  void record_success(const std::string& app, double run_seconds);

  // A job of `app` reached kFailed with its retry budget exhausted. Bumps
  // the streak; returns true when this failure trips the breaker open
  // (streak reached k, or a half-open trial failed).
  bool record_failure(const std::string& app, std::size_t breaker_k,
                      Clock::time_point now,
                      std::chrono::milliseconds cooldown);

  // nullptr when the app has never completed a job.
  const App* find(const std::string& app) const;

  // Full per-app view for the metrics exporter (caller holds the
  // scheduler lock, like every other accessor here).
  const std::map<std::string, App>& all() const { return apps_; }

 private:
  std::map<std::string, App> apps_;
};

}  // namespace ramr::service
