// Optional gzip stage for the streaming-input subsystem (zlib).
//
// Capability-probed like the PMU and hugepage layers: when the build found
// zlib, gzip_supported() is true and ".gz" inputs stream straight through
// an inflate ByteReader into the copying window source; without zlib the
// probe is false and opening a .gz input throws a clear Error instead of
// feeding compressed bytes to the apps. All zlib usage lives in gzip.cpp
// behind RAMR_HAVE_ZLIB so this header is unconditional.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "io/chunk_source.hpp"

namespace ramr::io {

// True when the build linked zlib (RAMR_HAVE_ZLIB).
bool gzip_supported();

// Inflating reader over a .gz file; read_some yields decompressed bytes.
// Throws Error when gzip_supported() is false, the file cannot be opened,
// or the stream is corrupt.
std::unique_ptr<ByteReader> open_gzip_reader(const std::string& path);

// One-shot gzip writer (tests and benches generate compressed corpora
// with it). Throws Error when unsupported or on I/O failure.
void write_gzip_file(const std::string& path, std::string_view data);

}  // namespace ramr::io
