// Streaming-input configuration: the RAMR_IO* env knobs (src/io/).
//
// RAMR_IO selects the source machinery:
//
//   off    (default) every app materializes its input up front
//          (apps/io.hpp) — byte-identical to the pre-streaming runtime;
//   mmap   sliding per-window mmap/munmap with MADV_SEQUENTIAL on arrival
//          and MADV_DONTNEED + munmap on retirement — note *per-window*
//          mappings, so address-space usage (ulimit -v) stays bounded by
//          the window budget, never the file size;
//   direct O_DIRECT double-buffered reads on the IO lane, falling back to
//          buffered + posix_fadvise where the filesystem refuses O_DIRECT
//          (the PMU/hugepage capability-probe convention).
//
// RAMR_IO_WINDOW bounds one window's bytes and RAMR_IO_DEPTH the in-flight
// window budget, so the streaming working set is window_bytes × depth
// regardless of input size — the flat memory high-water line the run
// report's "memory" object proves.
#pragma once

#include <cstddef>
#include <string>

namespace ramr::io {

enum class IoMode { kOff, kMmap, kDirect };

const char* to_string(IoMode mode);

// "off"/"0"/"no" -> kOff, "mmap" -> kMmap, "direct" -> kDirect; anything
// else is a ConfigError naming RAMR_IO (the RAMR_ADAPT/RAMR_MEM precedent).
IoMode parse_io_mode(const std::string& value);

inline constexpr const char* kEnvIo = "RAMR_IO";
inline constexpr const char* kEnvIoWindow = "RAMR_IO_WINDOW";
inline constexpr const char* kEnvIoDepth = "RAMR_IO_DEPTH";

struct IoConfig {
  IoMode mode = IoMode::kOff;
  std::size_t window_bytes = 8 * 1024 * 1024;  // RAMR_IO_WINDOW (bytes)
  std::size_t depth = 3;                       // RAMR_IO_DEPTH (windows)

  bool enabled() const { return mode != IoMode::kOff; }

  // Reads RAMR_IO / RAMR_IO_WINDOW / RAMR_IO_DEPTH over `base`. Strict:
  // unknown modes and out-of-range values (window outside [64 KiB, 1 GiB],
  // depth outside [2, 64]) are ConfigErrors naming the variable, matching
  // the RAMR_RATIO / RAMR_FAULTS fail-fast convention.
  static IoConfig from_env();
  static IoConfig from_env(IoConfig base);

  // "io=mmap window=8388608 depth=3" (for logs).
  std::string summary() const;
};

}  // namespace ramr::io
