#include "io/gzip.hpp"

#include <cstdio>
#include <fstream>
#include <vector>

#include "common/error.hpp"

#if defined(RAMR_HAVE_ZLIB)
#include <zlib.h>
#endif

namespace ramr::io {

#if defined(RAMR_HAVE_ZLIB)

namespace {

// windowBits 15 + 16 selects the gzip wrapper (RFC 1952) rather than raw
// deflate or zlib framing.
constexpr int kGzipWindowBits = 15 + 16;

class GzipReader final : public ByteReader {
 public:
  explicit GzipReader(const std::string& path)
      : path_(path), in_(path, std::ios::binary) {
    if (!in_) throw Error("cannot open gzip input '" + path + "'");
    stream_.zalloc = Z_NULL;
    stream_.zfree = Z_NULL;
    stream_.opaque = Z_NULL;
    if (inflateInit2(&stream_, kGzipWindowBits) != Z_OK) {
      throw Error("inflateInit2 failed for '" + path + "'");
    }
    inited_ = true;
    compressed_.resize(1 << 16);
  }
  ~GzipReader() override {
    if (inited_) inflateEnd(&stream_);
  }

  std::size_t read_some(char* dst, std::size_t n) override {
    if (done_) return 0;
    stream_.next_out = reinterpret_cast<Bytef*>(dst);
    stream_.avail_out = static_cast<uInt>(n);
    while (stream_.avail_out > 0) {
      if (stream_.avail_in == 0) {
        in_.read(compressed_.data(),
                 static_cast<std::streamsize>(compressed_.size()));
        const std::streamsize got = in_.gcount();
        if (in_.bad()) {
          throw Error("read of gzip input '" + path_ + "' failed");
        }
        if (got == 0) {
          // Compressed stream exhausted before Z_STREAM_END.
          throw Error("gzip input '" + path_ + "' is truncated");
        }
        stream_.next_in = reinterpret_cast<Bytef*>(compressed_.data());
        stream_.avail_in = static_cast<uInt>(got);
      }
      const int rc = inflate(&stream_, Z_NO_FLUSH);
      if (rc == Z_STREAM_END) {
        done_ = true;
        break;
      }
      if (rc != Z_OK) {
        throw Error("gzip inflate of '" + path_ + "' failed: " +
                    (stream_.msg != nullptr ? stream_.msg
                                            : std::to_string(rc)));
      }
    }
    return n - stream_.avail_out;
  }
  const char* kind() const override { return "gzip"; }

 private:
  std::string path_;
  std::ifstream in_;
  z_stream stream_{};
  bool inited_ = false;
  bool done_ = false;
  std::vector<char> compressed_;
};

}  // namespace

bool gzip_supported() { return true; }

std::unique_ptr<ByteReader> open_gzip_reader(const std::string& path) {
  return std::make_unique<GzipReader>(path);
}

void write_gzip_file(const std::string& path, std::string_view data) {
  z_stream stream{};
  if (deflateInit2(&stream, Z_DEFAULT_COMPRESSION, Z_DEFLATED,
                   kGzipWindowBits, 8, Z_DEFAULT_STRATEGY) != Z_OK) {
    throw Error("deflateInit2 failed for '" + path + "'");
  }
  std::vector<char> out(deflateBound(&stream, static_cast<uLong>(data.size())));
  stream.next_in =
      reinterpret_cast<Bytef*>(const_cast<char*>(data.data()));
  stream.avail_in = static_cast<uInt>(data.size());
  stream.next_out = reinterpret_cast<Bytef*>(out.data());
  stream.avail_out = static_cast<uInt>(out.size());
  const int rc = deflate(&stream, Z_FINISH);
  deflateEnd(&stream);
  if (rc != Z_STREAM_END) {
    throw Error("gzip deflate for '" + path + "' failed");
  }
  std::ofstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open '" + path + "' for writing");
  f.write(out.data(),
          static_cast<std::streamsize>(out.size() - stream.avail_out));
  if (!f) throw Error("write of '" + path + "' failed");
}

#else  // !RAMR_HAVE_ZLIB

bool gzip_supported() { return false; }

std::unique_ptr<ByteReader> open_gzip_reader(const std::string& path) {
  throw Error("cannot open gzip input '" + path +
              "': this build has no zlib (gzip_supported() is false); "
              "decompress the input or rebuild with zlib available");
}

void write_gzip_file(const std::string& path, std::string_view /*data*/) {
  throw Error("cannot write gzip file '" + path +
              "': this build has no zlib (gzip_supported() is false)");
}

#endif  // RAMR_HAVE_ZLIB

}  // namespace ramr::io
