// ChunkSource — bounded, record-aligned windows over a byte stream.
//
// The streaming contract: next() yields consecutive windows of at most
// `window_bytes` (IoConfig) whose concatenation is exactly the input
// stream, each cut only at a record break (for text, any whitespace byte —
// so no word is ever split across windows; binary streams cut anywhere).
// The cut tail of a window is carried over by the source itself, so
// callers never see a partial record. retire() releases a window's
// resources once every map task over it completed — for the mmap source
// that is the MADV_DONTNEED + munmap that keeps the resident set flat.
//
// Threading: next()/retire() are called only from the IO-lane feeder
// thread (src/io/stream_feeder.hpp); sources need no internal locking.
//
// Sources:
//   MmapChunkSource — per-window mmap/munmap sliding over the file (NOT a
//     whole-file mapping: address space stays bounded by the window
//     budget, so ulimit -v caps hold), MADV_SEQUENTIAL on arrival;
//   CopyChunkSource — fills caller scratch buffers from a ByteReader:
//     plain buffered reads, O_DIRECT (aligned bounce buffer, buffered
//     fallback when the filesystem refuses), or gzip inflate (io/gzip.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/io_config.hpp"

namespace ramr::io {

// One published window: `size` bytes at `data`, starting at global stream
// offset `base_offset` (apps whose keys depend on absolute position — the
// histogram's channel = offset % 3 — need it).
struct WindowData {
  const char* data = nullptr;
  std::size_t size = 0;
  std::uint64_t base_offset = 0;
};

// Record-break predicate: a window may end right after a byte for which
// this returns true. Null = binary stream, cut anywhere.
using RecordBreak = bool (*)(char);

// The whitespace class of the text apps (everything load_text_file
// normalises to ' '): breaking after any of these never cuts a word.
inline bool text_record_break(char c) {
  return c == ' ' || c == '\n' || c == '\r' || c == '\t' || c == '\v' ||
         c == '\f';
}

class ChunkSource {
 public:
  virtual ~ChunkSource() = default;

  // Produce the next window. Copying sources fill [scratch, scratch+cap)
  // (cap = IoConfig::window_bytes); zero_copy() sources ignore scratch and
  // return a view of their own memory. size == 0 signals end of stream.
  // Throws ConfigError naming RAMR_IO_WINDOW when a single record exceeds
  // the window, Error (with errno detail) on read failure.
  virtual WindowData next(char* scratch, std::size_t cap) = 0;

  // Every map task over `window` has completed; release its resources.
  virtual void retire(const WindowData& window) { (void)window; }

  // True when next() returns views of source-owned memory (the feeder
  // then allocates no scratch buffers).
  virtual bool zero_copy() const { return false; }

  // "mmap" | "direct" | "buffered" | "gzip" — the machinery actually in
  // use after capability fallback (IoStats::source).
  virtual const char* kind() const = 0;

  // Fresh input bytes read so far (decompressed bytes for gzip).
  std::uint64_t bytes_read() const { return bytes_read_; }

  // Record-boundary carry-over bytes copied between windows so far.
  std::uint64_t carry_bytes() const { return carry_total_; }

 protected:
  std::uint64_t bytes_read_ = 0;
  std::uint64_t carry_total_ = 0;
};

// Sequential byte producer behind CopyChunkSource.
class ByteReader {
 public:
  virtual ~ByteReader() = default;
  // Read up to n bytes into dst; 0 = end of stream. Throws Error (with
  // errno detail) on failure.
  virtual std::size_t read_some(char* dst, std::size_t n) = 0;
  virtual const char* kind() const = 0;
};

// Copying source: fills windows from a ByteReader, snapping each to the
// last record break and carrying the cut tail (plus a one-byte EOF probe)
// into the next window.
class CopyChunkSource : public ChunkSource {
 public:
  CopyChunkSource(std::unique_ptr<ByteReader> reader, RecordBreak is_break,
                  std::size_t window_bytes);

  WindowData next(char* scratch, std::size_t cap) override;
  const char* kind() const override { return reader_->kind(); }

 private:
  std::size_t fill(char* dst, std::size_t n);  // loops read_some

  std::unique_ptr<ByteReader> reader_;
  RecordBreak is_break_;
  std::size_t window_bytes_;
  std::string carry_;         // tail of the previous window
  std::uint64_t offset_ = 0;  // global offset of the next window start
  bool eof_ = false;
};

// Sliding per-window mmap source. Each window is its own page-aligned
// mapping (never the whole file), advised MADV_SEQUENTIAL; retire()
// advises MADV_DONTNEED and unmaps. Any mappings still live at
// destruction (cancelled runs) are unmapped then.
class MmapChunkSource : public ChunkSource {
 public:
  MmapChunkSource(const std::string& path, std::size_t window_bytes,
                  RecordBreak is_break);
  ~MmapChunkSource() override;

  WindowData next(char* scratch, std::size_t cap) override;
  void retire(const WindowData& window) override;
  bool zero_copy() const override { return true; }
  const char* kind() const override { return "mmap"; }

 private:
  struct Mapping {
    const char* data = nullptr;  // window view (for retire lookup)
    void* addr = nullptr;        // mapping base (page-aligned)
    std::size_t len = 0;
  };

  int fd_ = -1;
  std::uint64_t file_size_ = 0;
  std::uint64_t offset_ = 0;
  std::size_t window_bytes_;
  RecordBreak is_break_;
  std::vector<Mapping> live_;
};

// Readers for CopyChunkSource.
std::unique_ptr<ByteReader> open_buffered_reader(const std::string& path);
// O_DIRECT through an aligned bounce buffer; falls back to buffered reads
// (kind() reports which) when the open is refused (tmpfs, some network
// filesystems).
std::unique_ptr<ByteReader> open_direct_reader(const std::string& path);

// Factory: the source for `path` under `cfg`. A ".gz" suffix routes
// through the zlib inflate stage regardless of mode (compressed bytes
// cannot be windowed in place); throws Error when the build lacks zlib
// (see io/gzip.hpp). cfg.mode must not be kOff.
std::unique_ptr<ChunkSource> open_chunk_source(const std::string& path,
                                               const IoConfig& cfg,
                                               RecordBreak is_break);

}  // namespace ramr::io
