// StreamFeeder — the IO-lane thread that turns a ChunkSource into live
// map tasks (the engine::TaskPump behind PhaseDriver::run_stream).
//
// One dedicated thread overlaps IO with map compute: while workers chew on
// window w's tasks, the feeder is already filling window w+1. The loop per
// window:
//
//   1. wait for the window's slot (ordinal % depth) to drain — the
//      bounded-budget backpressure; counted as an io_stall and traced as
//      kIoStall when it actually blocks;
//   2. retire the slot's previous window (for mmap: MADV_DONTNEED+munmap —
//      this is what keeps the resident set flat);
//   3. fire the io_read fault site, then ChunkSource::next(); an injected
//      transient fault re-reads the same position up to the run's retry
//      budget (the source was never advanced — the site fires *before*
//      the read);
//   4. publish the window into the slot and push its TaskRanges
//      round-robin across the locality groups; traced as kIoWindow.
//
// On end of stream the feeder closes the queue stream (release-ordered
// after its final push), waits for the remaining windows to drain, and
// retires them. On failure it stores the exception, cancels the run token
// (cause kWorkerFailed so workers unwind quietly), closes the stream, and
// leaves cleanup to the source's destructor; finish() rethrows the stored
// failure on the driver thread, attributed to the io-lane.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "engine/phase_driver.hpp"
#include "engine/result.hpp"
#include "io/chunk_source.hpp"
#include "io/io_config.hpp"
#include "io/stream_input.hpp"

namespace ramr::io {

class StreamFeeder {
 public:
  // `input` must outlive the feeder; the source is owned. Construct a
  // fresh feeder (and source) for every run_stream call.
  StreamFeeder(std::unique_ptr<ChunkSource> source, StreamInput& input,
               IoConfig cfg);
  ~StreamFeeder();

  StreamFeeder(const StreamFeeder&) = delete;
  StreamFeeder& operator=(const StreamFeeder&) = delete;

  // engine::TaskPump surface (see engine/phase_driver.hpp).
  void start(const engine::StreamHooks& hooks);
  void finish();
  void cancel_and_join() noexcept;
  engine::IoStats stats() const;

 private:
  void run(engine::StreamHooks hooks);
  void feed(const engine::StreamHooks& hooks);

  std::unique_ptr<ChunkSource> source_;
  StreamInput& input_;
  IoConfig cfg_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::exception_ptr error_;

  // Per-slot scratch for copying sources (unused when zero_copy()).
  std::vector<std::vector<char>> scratch_;

  // Stats, written by the feeder thread, read after the join.
  std::uint64_t windows_ = 0;
  std::uint64_t io_stalls_ = 0;
  std::uint64_t io_retries_ = 0;
};

}  // namespace ramr::io
