#include "io/chunk_source.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "io/gzip.hpp"

namespace ramr::io {
namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  const int err = errno;
  throw Error(what + " '" + path + "': " + std::strerror(err) + " (errno " +
              std::to_string(err) + ")");
}

[[noreturn]] void throw_record_too_big(std::size_t window_bytes) {
  throw ConfigError(
      "streaming window of " + std::to_string(window_bytes) +
      " bytes (" + std::string(kEnvIoWindow) +
      ") is smaller than one input record; raise " + kEnvIoWindow);
}

// Index one past the last record break in [data, data+size); 0 when the
// range contains no break at all (record larger than the window).
std::size_t snap_to_break(const char* data, std::size_t size,
                          RecordBreak is_break) {
  for (std::size_t i = size; i > 0; --i) {
    if (is_break(data[i - 1])) return i;
  }
  return 0;
}

int open_read_fd(const std::string& path, int extra_flags) {
  return ::open(path.c_str(), O_RDONLY | extra_flags);  // NOLINT
}

// Plain buffered reads with sequential readahead advice.
class BufferedReader final : public ByteReader {
 public:
  explicit BufferedReader(const std::string& path) : path_(path) {
    fd_ = open_read_fd(path, 0);
    if (fd_ < 0) throw_errno("cannot open", path);
#if defined(POSIX_FADV_SEQUENTIAL)
    (void)posix_fadvise(fd_, 0, 0, POSIX_FADV_SEQUENTIAL);
#endif
  }
  ~BufferedReader() override {
    if (fd_ >= 0) ::close(fd_);
  }

  std::size_t read_some(char* dst, std::size_t n) override {
    for (;;) {
      const ssize_t got = ::read(fd_, dst, n);
      if (got >= 0) return static_cast<std::size_t>(got);
      if (errno == EINTR) continue;
      throw_errno("read of", path_);
    }
  }
  const char* kind() const override { return "buffered"; }

 private:
  std::string path_;
  int fd_ = -1;
};

// O_DIRECT reads through an aligned bounce buffer. O_DIRECT requires the
// user buffer, transfer length, and file offset all aligned (typically to
// 512B/4KiB); window scratch offsets are arbitrary once a carry is
// prepended, so reads land in the aligned bounce and are copied out. The
// file offset stays aligned because the bounce is always drained fully
// before the next pread.
class DirectReader final : public ByteReader {
 public:
  static constexpr std::size_t kAlign = 4096;
  static constexpr std::size_t kBounceBytes = 1 << 20;

  explicit DirectReader(const std::string& path) : path_(path) {
#if defined(O_DIRECT)
    fd_ = open_read_fd(path, O_DIRECT);
#else
    fd_ = -1;
    errno = EINVAL;
#endif
    if (fd_ < 0) {
      // Capability fallback (tmpfs and some network filesystems refuse
      // O_DIRECT): buffered reads, same interface, kind() says so.
      fd_ = open_read_fd(path, 0);
      if (fd_ < 0) throw_errno("cannot open", path);
      direct_ = false;
#if defined(POSIX_FADV_SEQUENTIAL)
      (void)posix_fadvise(fd_, 0, 0, POSIX_FADV_SEQUENTIAL);
#endif
      return;
    }
    void* mem = nullptr;
    if (posix_memalign(&mem, kAlign, kBounceBytes) != 0) {
      ::close(fd_);
      throw Error("cannot allocate aligned O_DIRECT buffer for '" + path +
                  "'");
    }
    bounce_ = static_cast<char*>(mem);
  }
  ~DirectReader() override {
    if (fd_ >= 0) ::close(fd_);
    std::free(bounce_);
  }

  std::size_t read_some(char* dst, std::size_t n) override {
    if (!direct_) {
      for (;;) {
        const ssize_t got = ::read(fd_, dst, n);
        if (got >= 0) return static_cast<std::size_t>(got);
        if (errno == EINTR) continue;
        throw_errno("read of", path_);
      }
    }
    if (bounce_pos_ == bounce_len_) {
      for (;;) {
        const ssize_t got = ::read(fd_, bounce_, kBounceBytes);
        if (got >= 0) {
          bounce_len_ = static_cast<std::size_t>(got);
          bounce_pos_ = 0;
          break;
        }
        if (errno == EINTR) continue;
        throw_errno("O_DIRECT read of", path_);
      }
      if (bounce_len_ == 0) return 0;
    }
    const std::size_t take = std::min(n, bounce_len_ - bounce_pos_);
    std::memcpy(dst, bounce_ + bounce_pos_, take);
    bounce_pos_ += take;
    return take;
  }
  const char* kind() const override {
    return direct_ ? "direct" : "buffered";
  }

 private:
  std::string path_;
  int fd_ = -1;
  bool direct_ = true;
  char* bounce_ = nullptr;
  std::size_t bounce_len_ = 0;
  std::size_t bounce_pos_ = 0;
};

bool has_gz_suffix(const std::string& path) {
  return path.size() > 3 && path.compare(path.size() - 3, 3, ".gz") == 0;
}

}  // namespace

// ---- CopyChunkSource -------------------------------------------------------

CopyChunkSource::CopyChunkSource(std::unique_ptr<ByteReader> reader,
                                 RecordBreak is_break,
                                 std::size_t window_bytes)
    : reader_(std::move(reader)), is_break_(is_break),
      window_bytes_(window_bytes) {
  if (window_bytes_ == 0) {
    throw ConfigError("streaming window must be at least 1 byte");
  }
}

std::size_t CopyChunkSource::fill(char* dst, std::size_t n) {
  std::size_t have = 0;
  while (have < n) {
    const std::size_t got = reader_->read_some(dst + have, n - have);
    if (got == 0) {
      eof_ = true;
      break;
    }
    have += got;
  }
  bytes_read_ += have;
  return have;
}

WindowData CopyChunkSource::next(char* scratch, std::size_t cap) {
  cap = std::min(cap, window_bytes_);
  if (carry_.size() > cap) throw_record_too_big(window_bytes_);
  std::size_t have = carry_.size();
  std::memcpy(scratch, carry_.data(), have);
  carry_.clear();
  if (!eof_) have += fill(scratch + have, cap - have);
  if (have == 0) return {};

  std::size_t end = have;
  bool more_coming = !eof_ && have == cap;
  char probe = 0;
  bool have_probe = false;
  if (more_coming) {
    // A full buffer with the reader not at EOF *might* still be the exact
    // end of the stream; one probe byte settles it so an exactly-window-
    // sized final record is not misreported as too big.
    if (fill(&probe, 1) == 0) {
      more_coming = false;
    } else {
      have_probe = true;
    }
  }
  if (is_break_ != nullptr && more_coming) {
    end = snap_to_break(scratch, have, is_break_);
    if (end == 0) throw_record_too_big(window_bytes_);
  }
  carry_.assign(scratch + end, have - end);
  if (have_probe) carry_.push_back(probe);
  carry_total_ += carry_.size();

  WindowData w;
  w.data = scratch;
  w.size = end;
  w.base_offset = offset_;
  offset_ += end;
  return w;
}

// ---- MmapChunkSource -------------------------------------------------------

MmapChunkSource::MmapChunkSource(const std::string& path,
                                 std::size_t window_bytes,
                                 RecordBreak is_break)
    : window_bytes_(window_bytes), is_break_(is_break) {
  if (window_bytes_ == 0) {
    throw ConfigError("streaming window must be at least 1 byte");
  }
  fd_ = open_read_fd(path, 0);
  if (fd_ < 0) throw_errno("cannot open", path);
  struct stat st{};
  if (fstat(fd_, &st) != 0) {
    const int err = errno;
    ::close(fd_);
    errno = err;
    throw_errno("cannot stat", path);
  }
  file_size_ = static_cast<std::uint64_t>(st.st_size);
}

MmapChunkSource::~MmapChunkSource() {
  for (const Mapping& m : live_) {
    ::munmap(m.addr, m.len);
  }
  if (fd_ >= 0) ::close(fd_);
}

WindowData MmapChunkSource::next(char* /*scratch*/, std::size_t cap) {
  const std::size_t window = std::min(cap, window_bytes_);
  if (offset_ >= file_size_) return {};
  const std::uint64_t nominal_end =
      std::min(offset_ + window, file_size_);
  const std::uint64_t page =
      static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  const std::uint64_t map_start = offset_ - (offset_ % page);
  const std::size_t map_len = static_cast<std::size_t>(nominal_end - map_start);
  void* addr = ::mmap(nullptr, map_len, PROT_READ, MAP_PRIVATE, fd_,
                      static_cast<off_t>(map_start));
  if (addr == MAP_FAILED) {
    const int err = errno;
    throw Error("mmap of streaming window at offset " +
                std::to_string(offset_) + " failed: " + std::strerror(err) +
                " (errno " + std::to_string(err) + ")");
  }
#if defined(MADV_SEQUENTIAL)
  (void)::madvise(addr, map_len, MADV_SEQUENTIAL);
#endif
  const char* data =
      static_cast<const char*>(addr) + (offset_ - map_start);
  std::size_t size = static_cast<std::size_t>(nominal_end - offset_);
  if (is_break_ != nullptr && nominal_end < file_size_) {
    const std::size_t end = snap_to_break(data, size, is_break_);
    if (end == 0) {
      ::munmap(addr, map_len);
      throw_record_too_big(window_bytes_);
    }
    size = end;
  }
  live_.push_back(Mapping{data, addr, map_len});

  WindowData w;
  w.data = data;
  w.size = size;
  w.base_offset = offset_;
  offset_ += size;
  bytes_read_ += size;
  return w;
}

void MmapChunkSource::retire(const WindowData& window) {
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (live_[i].data == window.data) {
#if defined(MADV_DONTNEED)
      (void)::madvise(live_[i].addr, live_[i].len, MADV_DONTNEED);
#endif
      ::munmap(live_[i].addr, live_[i].len);
      live_.erase(live_.begin() +
                  static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

// ---- readers + factory -----------------------------------------------------

std::unique_ptr<ByteReader> open_buffered_reader(const std::string& path) {
  return std::make_unique<BufferedReader>(path);
}

std::unique_ptr<ByteReader> open_direct_reader(const std::string& path) {
  return std::make_unique<DirectReader>(path);
}

std::unique_ptr<ChunkSource> open_chunk_source(const std::string& path,
                                               const IoConfig& cfg,
                                               RecordBreak is_break) {
  if (!cfg.enabled()) {
    throw ConfigError("open_chunk_source: RAMR_IO mode is off");
  }
  if (has_gz_suffix(path)) {
    // Compressed input cannot be windowed in place: route both modes
    // through the inflate stage, which feeds the copying source.
    return std::make_unique<CopyChunkSource>(open_gzip_reader(path),
                                             is_break, cfg.window_bytes);
  }
  if (cfg.mode == IoMode::kMmap) {
    return std::make_unique<MmapChunkSource>(path, cfg.window_bytes,
                                             is_break);
  }
  return std::make_unique<CopyChunkSource>(open_direct_reader(path),
                                           is_break, cfg.window_bytes);
}

}  // namespace ramr::io
