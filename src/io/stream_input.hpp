// StreamInput — the bounded window-slot table between the IO lane and the
// map workers.
//
// The streaming input_type of the apps in src/apps/streaming.hpp: instead
// of a materialized split vector, split_view(global_split) resolves a
// split index to a byte range inside one of `depth` (RAMR_IO_DEPTH) live
// windows. Global split indexing is strided: every window owns the index
// range [w * splits_per_window, (w+1) * splits_per_window); short windows
// (the file tail, a record-snapped cut) simply publish fewer splits and
// leave the rest of their stride unused — no task ever references them.
//
// Slot protocol (the backpressure that bounds memory):
//   feeder: poll slot_free(w) — acquire — until the slot's pending-split
//           count is zero, retire the previous occupant (take_occupant),
//           read the new window, publish(w, window, splits) — release —
//           then push the window's TaskRanges;
//   worker: pops a task (the queue mutex orders the slot fields it is
//           about to read after publish), maps it, and the engine calls
//           on_task_complete — release fetch_sub of the task's split
//           count — once the task fully succeeded.
// Slot fields other than `pending` are plain: the release publish /
// acquire poll pair plus the queue mutex are the only synchronization
// needed because exactly one thread (the feeder) ever writes them.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "io/chunk_source.hpp"
#include "io/io_config.hpp"
#include "sched/task_queue.hpp"

namespace ramr::io {

class StreamInput : public sched::TaskCompletionListener {
 public:
  // One split as the app's map() sees it: the in-window byte range
  // [begin, end) of the whole window [window_data, window_data +
  // window_size). Exposing the window, not just the slice, lets the text
  // apps keep their exact materialized-path idiom: peek at byte begin-1 to
  // apply the word-ownership rule, and finish a word that crosses `end`
  // by scanning on to window_size (a word never crosses a *window* edge —
  // the source snapped the cut to a record break). `window_base` is the
  // absolute stream offset of window_data[0] (the histogram's channel
  // rotation keys off absolute position).
  struct SplitView {
    const char* window_data = nullptr;
    std::size_t window_size = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::uint64_t window_base = 0;
  };

  StreamInput(const IoConfig& cfg, std::size_t split_bytes)
      : split_bytes_(split_bytes), slots_(cfg.depth) {
    if (split_bytes_ == 0) {
      throw ConfigError("streaming split size must be at least 1 byte");
    }
    if (cfg.depth == 0) {
      throw ConfigError("streaming window depth must be at least 1");
    }
    splits_per_window_ = (cfg.window_bytes + split_bytes_ - 1) / split_bytes_;
    if (splits_per_window_ == 0) splits_per_window_ = 1;
  }

  std::size_t splits_per_window() const { return splits_per_window_; }
  std::size_t split_bytes() const { return split_bytes_; }
  std::size_t depth() const { return slots_.size(); }

  // Total splits published so far (grows while the feeder runs).
  std::size_t published_splits() const {
    return published_splits_.load(std::memory_order_acquire);
  }

  // Worker side: resolve a global split index to its byte range. Only
  // valid for splits that are part of a pushed task (the feeder never
  // enqueues the unused tail of a window's stride).
  SplitView split_view(std::size_t split) const {
    const std::size_t w = split / splits_per_window_;
    const Slot& slot = slots_[w % slots_.size()];
    assert(slot.ordinal == w && "split resolved after its window retired");
    const std::size_t begin = (split % splits_per_window_) * split_bytes_;
    assert(begin < slot.window.size && "split outside the published window");
    const std::size_t end =
        begin + split_bytes_ < slot.window.size ? begin + split_bytes_
                                                : slot.window.size;
    return SplitView{slot.window.data, slot.window.size, begin, end,
                     slot.window.base_offset};
  }

  // Engine side (TaskQueues::notify_complete): a task fully succeeded;
  // release its splits so the feeder can recycle the window's slot. Tasks
  // never span windows (the feeder cuts them per window).
  void on_task_complete(const sched::TaskRange& task) noexcept override {
    const std::size_t w = task.begin / splits_per_window_;
    slots_[w % slots_.size()].pending.fetch_sub(task.size(),
                                                std::memory_order_release);
  }

  // ---- feeder side (single thread, the IO lane) -------------------------

  // True when every task over the slot's current window has completed.
  bool slot_free(std::uint64_t ordinal) const {
    return slots_[ordinal % slots_.size()].pending.load(
               std::memory_order_acquire) == 0;
  }

  // The window previously published into this slot (to hand to
  // ChunkSource::retire), clearing the occupancy. nullopt on first use.
  std::optional<WindowData> take_occupant(std::uint64_t ordinal) {
    Slot& slot = slots_[ordinal % slots_.size()];
    if (!slot.occupied) return std::nullopt;
    slot.occupied = false;
    return slot.window;
  }

  // Install a freshly read window into its slot and arm the pending-split
  // count. Caller pushes the window's tasks afterwards.
  void publish(std::uint64_t ordinal, const WindowData& window,
               std::size_t splits) {
    Slot& slot = slots_[ordinal % slots_.size()];
    slot.window = window;
    slot.ordinal = ordinal;
    slot.occupied = true;
    slot.pending.store(splits, std::memory_order_release);
    published_splits_.fetch_add(splits, std::memory_order_release);
  }

 private:
  struct Slot {
    WindowData window;
    std::uint64_t ordinal = 0;
    bool occupied = false;
    std::atomic<std::size_t> pending{0};
  };

  std::size_t split_bytes_;
  std::size_t splits_per_window_ = 1;
  std::vector<Slot> slots_;
  std::atomic<std::size_t> published_splits_{0};
};

}  // namespace ramr::io
