#include "io/stream_feeder.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "spsc/backoff.hpp"
#include "trace/trace.hpp"

namespace ramr::io {

namespace {
// Slot-wait ladder: spin briefly, then sleep 50us doubling to 2ms — long
// enough to stay off the map workers' cores during a long map phase, short
// enough that cancel/stop propagate promptly.
constexpr std::chrono::microseconds kWaitInitial{50};
constexpr std::chrono::microseconds kWaitCap{2000};
}  // namespace

StreamFeeder::StreamFeeder(std::unique_ptr<ChunkSource> source,
                           StreamInput& input, IoConfig cfg)
    : source_(std::move(source)), input_(input), cfg_(cfg) {
  if (source_ == nullptr) {
    throw ConfigError("StreamFeeder needs a ChunkSource");
  }
  if (!source_->zero_copy()) {
    scratch_.resize(input_.depth());
  }
}

StreamFeeder::~StreamFeeder() { cancel_and_join(); }

void StreamFeeder::start(const engine::StreamHooks& hooks) {
  // Completed tasks must release their window slot: route the queues'
  // completion callback at the slot table. start() runs in the split
  // phase, before any worker pops — the plain store is safe.
  hooks.queues->set_completion_listener(&input_);
  thread_ = std::thread([this, hooks] { run(hooks); });
}

void StreamFeeder::finish() {
  if (thread_.joinable()) thread_.join();
  if (error_ != nullptr) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void StreamFeeder::cancel_and_join() noexcept {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

engine::IoStats StreamFeeder::stats() const {
  engine::IoStats s;
  s.mode = to_string(cfg_.mode);
  s.source = source_->kind();
  s.bytes_read = source_->bytes_read();
  s.windows = windows_;
  s.window_bytes = cfg_.window_bytes;
  s.depth = cfg_.depth;
  s.io_stalls = io_stalls_;
  s.io_retries = io_retries_;
  s.carry_bytes = source_->carry_bytes();
  return s;
}

void StreamFeeder::run(engine::StreamHooks hooks) {
  try {
    feed(hooks);
  } catch (...) {
    error_ = std::current_exception();
    std::string detail = "io-lane read failed";
    try {
      throw;
    } catch (const std::exception& e) {
      detail = e.what();
    } catch (...) {
    }
    // Cause kWorkerFailed: workers unwind quietly and the stored exception
    // — rethrown by finish() on the driver thread — is the root cause.
    hooks.cancel->cancel(common::CancelCause::kWorkerFailed, "map-combine",
                         "io-lane", detail);
  }
  // Always close, on success and failure alike: a release store ordered
  // after the final push, so a worker that sees the closed stream and
  // re-pops observes every task.
  hooks.queues->close_stream();
}

void StreamFeeder::feed(const engine::StreamHooks& hooks) {
  spsc::ExponentialSleepBackoff backoff(kWaitInitial, kWaitCap);
  backoff.bind(&hooks.cancel->flag());
  const auto stopped = [&] {
    return stop_.load(std::memory_order_acquire) || hooks.cancel->cancelled();
  };

  std::uint64_t next_window = 0;
  std::size_t group = 0;
  for (;; ++next_window) {
    // 1. Backpressure: wait for the window's slot to drain.
    if (!input_.slot_free(next_window)) {
      ++io_stalls_;
      if (hooks.lane != nullptr) {
        hooks.lane->record(hooks.epoch, trace::EventKind::kIoStall,
                           next_window);
      }
      while (!input_.slot_free(next_window)) {
        if (stopped() || !backoff.wait()) return;
      }
      backoff.reset();
    }
    if (stopped()) return;

    // 2. Recycle: retire the window this slot held before (mmap unmaps —
    // the step that keeps the resident set flat at depth × window).
    if (std::optional<WindowData> prev = input_.take_occupant(next_window)) {
      source_->retire(*prev);
    }

    // 3. Read, through the io_read fault site; an injected transient
    // fault re-reads the same position (the site fires before the read).
    char* scratch = nullptr;
    if (!scratch_.empty()) {
      auto& buf = scratch_[next_window % scratch_.size()];
      if (buf.size() < cfg_.window_bytes) buf.resize(cfg_.window_bytes);
      scratch = buf.data();
    }
    WindowData window;
    for (std::size_t attempt = 0;; ++attempt) {
      try {
        if (hooks.injector != nullptr) hooks.injector->on_io_read(next_window);
        window = source_->next(scratch, cfg_.window_bytes);
        break;
      } catch (const TransientError&) {
        if (attempt >= hooks.max_retries) throw;
        ++io_retries_;
      }
    }
    if (window.size == 0) break;  // end of stream

    // 4. Publish the window and push its tasks round-robin across groups.
    const std::size_t splits =
        (window.size + input_.split_bytes() - 1) / input_.split_bytes();
    const std::size_t base = static_cast<std::size_t>(next_window) *
                             input_.splits_per_window();
    input_.publish(next_window, window, splits);
    for (std::size_t s = 0; s < splits; s += hooks.task_size) {
      sched::TaskRange task{base + s,
                            base + std::min(s + hooks.task_size, splits)};
      hooks.queues->push(group, task);
      group = (group + 1) % hooks.num_groups;
    }
    ++windows_;
    if (hooks.lane != nullptr) {
      hooks.lane->record(hooks.epoch, trace::EventKind::kIoWindow,
                         next_window);
    }
  }

  // End of stream: let the workers finish (close_stream in run() happens
  // after we return — but they must see it to exit their wait loop, so
  // close here first, then drain and retire the remaining live windows).
  hooks.queues->close_stream();
  const std::uint64_t first_live =
      next_window > input_.depth()
          ? next_window - static_cast<std::uint64_t>(input_.depth())
          : 0;
  for (std::uint64_t w = first_live; w < next_window; ++w) {
    while (!input_.slot_free(w)) {
      if (stopped() || !backoff.wait()) return;
    }
    backoff.reset();
    if (std::optional<WindowData> prev = input_.take_occupant(w)) {
      source_->retire(*prev);
    }
  }
}

}  // namespace ramr::io
