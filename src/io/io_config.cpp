#include "io/io_config.hpp"

#include "common/env.hpp"
#include "common/error.hpp"

namespace ramr::io {
namespace {

// Same failure shape as common/config.cpp's check_env_range, repeated here
// so the io library stays independent of the config layer.
void check_env_range(const char* name, std::size_t value, std::size_t lo,
                     std::size_t hi) {
  if (value < lo || value > hi) {
    throw ConfigError("env knob " + std::string(name) + ": value " +
                      std::to_string(value) + " is out of range [" +
                      std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
}

}  // namespace

const char* to_string(IoMode mode) {
  switch (mode) {
    case IoMode::kOff: return "off";
    case IoMode::kMmap: return "mmap";
    case IoMode::kDirect: return "direct";
  }
  return "?";
}

IoMode parse_io_mode(const std::string& value) {
  if (value == "off" || value == "0" || value == "no") return IoMode::kOff;
  if (value == "mmap") return IoMode::kMmap;
  if (value == "direct") return IoMode::kDirect;
  throw ConfigError("env knob RAMR_IO: unknown mode '" + value +
                    "' (expected off|mmap|direct)");
}

IoConfig IoConfig::from_env() { return from_env(IoConfig{}); }

IoConfig IoConfig::from_env(IoConfig base) {
  if (auto v = env::get(kEnvIo)) base.mode = parse_io_mode(*v);
  base.window_bytes = static_cast<std::size_t>(
      env::get_uint(kEnvIoWindow, base.window_bytes));
  if (env::get(kEnvIoWindow)) {
    check_env_range(kEnvIoWindow, base.window_bytes, 64 * 1024,
                    1024u * 1024 * 1024);
  }
  base.depth =
      static_cast<std::size_t>(env::get_uint(kEnvIoDepth, base.depth));
  if (env::get(kEnvIoDepth)) {
    check_env_range(kEnvIoDepth, base.depth, 2, 64);
  }
  return base;
}

std::string IoConfig::summary() const {
  return std::string("io=") + to_string(mode) +
         " window=" + std::to_string(window_bytes) +
         " depth=" + std::to_string(depth);
}

}  // namespace ramr::io
