#include "mem/layer.hpp"

#include <algorithm>

namespace ramr::mem {

namespace {

// Arena chunks are sized so numa-mode chunks can actually be backed by one
// transparent huge page (2 MiB on x86-64); smaller would fragment the
// advice away.
constexpr std::size_t kArenaChunkBytes = 2 * 1024 * 1024;

// Bound on parked ring blocks: enough for every ring of one large dual
// shape to survive a run boundary, small enough that an idle warm pool set
// holds at most a few hundred MiB of spare slot storage.
constexpr std::size_t kMaxRingSpares = 64;

std::vector<int> nodes_from(const topo::Topology& topo,
                            const std::vector<std::size_t>& cpus,
                            std::size_t count, bool placed) {
  std::vector<int> nodes(count, -1);
  if (!placed) return nodes;
  for (std::size_t i = 0; i < count && i < cpus.size(); ++i) {
    nodes[i] = static_cast<int>(topo.by_os_id(cpus[i]).socket);
  }
  return nodes;
}

}  // namespace

MemoryLayer::MemoryLayer(MemMode mode, const topo::Topology& topo,
                         const topo::PinningPlan& plan)
    : mode_(mode), num_mappers_(plan.num_mappers()) {
  const bool placed = placement();
  mapper_node_ = nodes_from(topo, plan.mapper_cpu, plan.num_mappers(), placed);
  combiner_node_ =
      nodes_from(topo, plan.combiner_cpu, plan.num_combiners(), placed);
  arenas_.reserve(plan.num_mappers() + plan.num_combiners());
  for (std::size_t m = 0; m < plan.num_mappers(); ++m) {
    arenas_.emplace_back(kArenaChunkBytes, mapper_node_[m],
                         /*want_huge=*/true);
  }
  for (std::size_t j = 0; j < plan.num_combiners(); ++j) {
    arenas_.emplace_back(kArenaChunkBytes, combiner_node_[j],
                         /*want_huge=*/true);
  }
}

int MemoryLayer::node_of_mapper(std::size_t m) const {
  return m < mapper_node_.size() ? mapper_node_[m] : -1;
}

int MemoryLayer::node_of_combiner(std::size_t j) const {
  return j < combiner_node_.size() ? combiner_node_[j] : -1;
}

spsc::SlotStorage MemoryLayer::ring_storage(int node) {
  std::lock_guard lock(ring_mutex_);
  NodeStorage* ctx = nullptr;
  for (const auto& ns : node_storages_) {
    if (ns->node == node) {
      ctx = ns.get();
      break;
    }
  }
  if (ctx == nullptr) {
    node_storages_.push_back(
        std::make_unique<NodeStorage>(NodeStorage{this, node}));
    ctx = node_storages_.back().get();
  }
  return spsc::SlotStorage{&MemoryLayer::storage_alloc,
                           &MemoryLayer::storage_free, ctx};
}

void* MemoryLayer::ring_alloc(std::size_t bytes, std::size_t align,
                              int node) {
  const int want_node = placement() ? node : -1;
  {
    // Warm path: a parked block of the same size, alignment and node keeps
    // its mapping, placement, and already-faulted pages.
    std::lock_guard lock(ring_mutex_);
    for (auto it = ring_spares_.begin(); it != ring_spares_.end(); ++it) {
      if (it->buffer.size() == bytes && it->align == align &&
          it->node == want_node) {
        RingBlock block = std::move(*it);
        ring_spares_.erase(it);
        void* data = block.buffer.data();
        ring_bytes_ += bytes;
        ++ring_reuses_;
        ring_blocks_.emplace(data, std::move(block));
        return data;
      }
    }
  }
  PageBuffer buffer(bytes, align, want_node, /*want_huge=*/true);
  void* data = buffer.data();
  std::lock_guard lock(ring_mutex_);
  ring_bytes_ += bytes;
  ring_huge_ = ring_huge_ || buffer.huge();
  ring_bound_ = ring_bound_ || buffer.bound();
  ring_blocks_.emplace(data, RingBlock{std::move(buffer), align, want_node});
  return data;
}

void MemoryLayer::ring_free(void* data) {
  std::lock_guard lock(ring_mutex_);
  auto it = ring_blocks_.find(data);
  if (it == ring_blocks_.end()) return;
  ring_bytes_ -= it->second.buffer.size();
  if (ring_spares_.size() < kMaxRingSpares) {
    ring_spares_.push_back(std::move(it->second));
  }
  ring_blocks_.erase(it);  // overflow: PageBuffer dtor returns the block
}

void* MemoryLayer::storage_alloc(std::size_t bytes, std::size_t align,
                                 void* ctx) {
  auto* ns = static_cast<NodeStorage*>(ctx);
  return ns->layer->ring_alloc(bytes, align, ns->node);
}

void MemoryLayer::storage_free(void* data, std::size_t, void* ctx) {
  static_cast<NodeStorage*>(ctx)->layer->ring_free(data);
}

LayerStats MemoryLayer::end_run() {
  LayerStats out;
  out.mode = to_string(mode_);
  for (Arena& arena : arenas_) arena.reset();
  for (const Arena& arena : arenas_) {
    const ArenaStats& s = arena.stats();
    out.arena_high_water = std::max(out.arena_high_water, s.high_water);
    out.arena_chunk_bytes += s.chunk_bytes;
    out.arena_resets += s.resets;
  }
  {
    std::lock_guard lock(ring_mutex_);
    out.ring_bytes = ring_bytes_;
    out.ring_reuses = ring_reuses_;
    out.hugepages = ring_huge_;
    out.mbind = ring_bound_;
  }
  return out;
}

}  // namespace ramr::mem
