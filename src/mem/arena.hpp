// Per-thread bump arenas for intermediate KV payloads and container nodes.
//
// The paper (and Lu et al.'s Xeon Phi study in PAPERS.md) found dynamic
// allocation a first-order cost on many-core parts: the map-combine phase
// allocates millions of short-lived intermediate objects whose lifetimes
// all end together at the phase boundary. An arena turns each of those
// malloc/free pairs into a pointer bump, and the phase-end teardown into
// one wholesale reset that keeps the chunks for the next run.
//
// Threading model: an Arena is single-owner — exactly one worker thread
// allocates from it while the pipeline runs (that lazy first allocation is
// also what first-touches the chunk onto the owner's NUMA node). reset()
// and stats() are called by the driver thread, but only after the pools
// joined (the pool join provides the happens-before edge; the arena itself
// carries no atomics).
#pragma once

#include <cstddef>
#include <vector>

#include "mem/pages.hpp"

namespace ramr::mem {

struct ArenaStats {
  std::size_t allocated = 0;    // live bytes since the last reset
  std::size_t high_water = 0;   // max live bytes across all resets
  std::size_t chunk_bytes = 0;  // backing storage currently held
  std::size_t chunks = 0;
  std::size_t resets = 0;
};

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 256 * 1024;

  // `node` >= 0 binds new chunks to that NUMA node (when mbind is
  // available; first-touch by the owner thread otherwise). `want_huge`
  // requests MADV_HUGEPAGE on chunks. No memory is allocated until the
  // first allocate() — the owner thread's first touch places the pages.
  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes, int node = -1,
                 bool want_huge = false)
      : chunk_bytes_(chunk_bytes < 4096 ? 4096 : chunk_bytes),
        node_(node),
        want_huge_(want_huge) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  // Bump-allocates `bytes` aligned to `align` (power of two). Never
  // returns nullptr; grows by a new chunk when the current one is full
  // (oversized requests get a dedicated chunk).
  void* allocate(std::size_t bytes, std::size_t align);

  // Wholesale reset: every previous allocation is invalidated at once, all
  // chunks are kept for reuse. This is the phase-boundary teardown the
  // element-wise free path can never match.
  void reset();

  // Returns all chunks to the OS (reset + free).
  void release();

  const ArenaStats& stats() const { return stats_; }
  int node() const { return node_; }

 private:
  struct Chunk {
    PageBuffer buffer;
    std::size_t offset = 0;
  };

  Chunk& grow(std::size_t min_bytes);

  std::size_t chunk_bytes_;
  int node_;
  bool want_huge_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // chunks_[current_] is being bumped
  ArenaStats stats_;
};

// Minimal C++17-style allocator adapter so std containers (the emit
// buffer, test vectors, hash-container slot arrays) can live in an arena.
// deallocate is a no-op — memory comes back wholesale via Arena::reset().
// The arena must outlive every container using it.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}

  Arena* arena() const { return arena_; }

  bool operator==(const ArenaAllocator& other) const {
    return arena_ == other.arena_;
  }

 private:
  Arena* arena_;
};

}  // namespace ramr::mem
