#include "mem/pages.hpp"

#include <cstdint>
#include <new>
#include <utility>

#include "common/config.hpp"
#include "common/env.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace ramr::mem {

namespace {

#if defined(__linux__) && defined(SYS_mbind)
// Raw syscall: libnuma is deliberately not a dependency (the toolchain
// image does not ship it, and the paper's placement needs are just "put
// this block on that node"). MPOL_PREFERRED spills instead of OOM-killing
// when the node is full.
constexpr int kMpolPreferred = 1;

bool mbind_block(void* addr, std::size_t len, int node) {
  const unsigned long nodemask = 1UL << static_cast<unsigned>(node);
  return syscall(SYS_mbind, addr, len, kMpolPreferred, &nodemask,
                 sizeof(nodemask) * 8, 0UL) == 0;
}
#else
bool mbind_block(void*, std::size_t, int) { return false; }
#endif

PageCaps probe_caps() {
  PageCaps caps;
#if defined(__linux__)
  const std::size_t page = page_size();
  void* p = ::mmap(nullptr, page, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) return caps;
  caps.mmap_ok = true;
#if defined(MADV_HUGEPAGE)
  caps.hugepage_ok = ::madvise(p, page, MADV_HUGEPAGE) == 0;
#endif
#if defined(SYS_mbind)
  // Probe node 0 specifically: every machine with any NUMA support has it,
  // and ENOSYS / EPERM (seccomp) show up identically for real requests.
  caps.mbind_ok = mbind_block(p, page, 0);
#endif
  ::munmap(p, page);
#endif
  return caps;
}

std::size_t round_up(std::size_t v, std::size_t to) {
  return (v + to - 1) / to * to;
}

}  // namespace

std::size_t page_size() {
#if defined(__linux__)
  static const std::size_t page =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return page;
#else
  return 4096;
#endif
}

const PageCaps& page_caps() {
  static const PageCaps caps = probe_caps();
  return caps;
}

bool hugepages_enabled() {
  return page_caps().hugepage_ok && env::get_bool(kEnvHugePages, true);
}

PageBuffer::PageBuffer(std::size_t bytes, std::size_t align, int node,
                       bool want_huge) {
  if (bytes == 0) return;
  bytes_ = bytes;
  align_ = align < alignof(std::max_align_t) ? alignof(std::max_align_t)
                                             : align;
#if defined(__linux__)
  if (page_caps().mmap_ok && align_ <= page_size()) {
    const std::size_t len = round_up(bytes, page_size());
    void* p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
      data_ = p;
      mapped_ = true;
      mapped_bytes_ = len;
#if defined(MADV_HUGEPAGE)
      if (want_huge && hugepages_enabled()) {
        huge_ = ::madvise(p, len, MADV_HUGEPAGE) == 0;
      }
#else
      (void)want_huge;
#endif
      // Binding must precede the first touch: mbind only affects pages
      // faulted in afterwards (already-touched pages stay put).
      if (node >= 0 && page_caps().mbind_ok) {
        bound_ = mbind_block(p, len, node);
      }
      return;
    }
  }
#else
  (void)node;
  (void)want_huge;
#endif
  // Fallback: aligned heap allocation — correct everywhere, placed by
  // whatever the allocator and first-touch give us.
  data_ = ::operator new(bytes, std::align_val_t(align_));
}

void PageBuffer::release() {
  if (data_ == nullptr) return;
#if defined(__linux__)
  if (mapped_) {
    ::munmap(data_, mapped_bytes_);
    data_ = nullptr;
    return;
  }
#endif
  ::operator delete(data_, std::align_val_t(align_));
  data_ = nullptr;
}

PageBuffer::~PageBuffer() { release(); }

PageBuffer::PageBuffer(PageBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)),
      mapped_bytes_(std::exchange(other.mapped_bytes_, 0)),
      align_(std::exchange(other.align_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      huge_(std::exchange(other.huge_, false)),
      bound_(std::exchange(other.bound_, false)) {}

PageBuffer& PageBuffer::operator=(PageBuffer&& other) noexcept {
  if (this != &other) {
    release();
    data_ = std::exchange(other.data_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    mapped_bytes_ = std::exchange(other.mapped_bytes_, 0);
    align_ = std::exchange(other.align_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    huge_ = std::exchange(other.huge_, false);
    bound_ = std::exchange(other.bound_, false);
  }
  return *this;
}

}  // namespace ramr::mem
