// Page-granular backing storage for the memory subsystem (RAMR_MEM):
// anonymous mmap regions advised toward transparent huge pages, optionally
// bound to a NUMA node, with graceful fallback to aligned operator new.
//
// The paper's many-core results (Sec. III-A batched reads, Sec. IV-D
// container study) are stories about coherence traffic and TLB/allocator
// pressure; Ring slot arrays and arena chunks are exactly the large,
// long-lived, single-owner blocks that huge pages and node-local placement
// pay off for. Every capability is probed, never assumed:
//
//   * no mmap (or a failing one)      -> aligned heap allocation;
//   * no MADV_HUGEPAGE / THP disabled -> plain small pages;
//   * no mbind (no NUMA, seccomp, …)  -> first-touch placement only.
//
// Absence of any of these is NEVER an error — the block is still usable,
// just less ideally placed. RAMR_HUGEPAGES=0 forces the huge-page advice
// off (used by the forced-fallback tests and as an operator escape hatch).
#pragma once

#include <cstddef>

namespace ramr::mem {

// Host capabilities, probed once per process (cheap, unprivileged).
struct PageCaps {
  bool mmap_ok = false;      // anonymous private mmap works
  bool hugepage_ok = false;  // MADV_HUGEPAGE is accepted (THP madvise mode)
  bool mbind_ok = false;     // the mbind syscall is available
};

const PageCaps& page_caps();

// Whether huge-page advice is currently requested: the probed capability
// gated by the RAMR_HUGEPAGES env knob (default on). Read per allocation so
// a test can force the fallback path with a scoped override.
bool hugepages_enabled();

std::size_t page_size();

// One page-backed block. Movable, not copyable; the destructor returns the
// block to whichever allocator actually produced it.
class PageBuffer {
 public:
  PageBuffer() = default;

  // Allocates `bytes` (rounded up to whole pages on the mmap path) aligned
  // to at least `align`. `node` >= 0 requests binding to that NUMA node via
  // mbind (MPOL_PREFERRED — under memory pressure the kernel may still
  // spill, which beats failing); `want_huge` requests MADV_HUGEPAGE.
  // Follows the fallback ladder above; throws std::bad_alloc only when the
  // final aligned-new fallback itself fails.
  PageBuffer(std::size_t bytes, std::size_t align, int node, bool want_huge);

  ~PageBuffer();

  PageBuffer(PageBuffer&& other) noexcept;
  PageBuffer& operator=(PageBuffer&& other) noexcept;
  PageBuffer(const PageBuffer&) = delete;
  PageBuffer& operator=(const PageBuffer&) = delete;

  void* data() const { return data_; }
  std::size_t size() const { return bytes_; }
  explicit operator bool() const { return data_ != nullptr; }

  bool mapped() const { return mapped_; }  // false = aligned-new fallback
  bool huge() const { return huge_; }      // MADV_HUGEPAGE was applied
  bool bound() const { return bound_; }    // mbind to `node` succeeded

 private:
  void release();

  void* data_ = nullptr;
  std::size_t bytes_ = 0;    // request size (what data() is good for)
  std::size_t mapped_bytes_ = 0;  // page-rounded mmap length (0 = heap)
  std::size_t align_ = 0;
  bool mapped_ = false;
  bool huge_ = false;
  bool bound_ = false;
};

}  // namespace ramr::mem
