// MemoryLayer — the engine-facing façade of the RAMR_MEM subsystem.
//
// Built by engine::PoolSet when RAMR_MEM != off (the engine carries a null
// pointer otherwise, so the default mode costs one pointer check per
// allocation site). The layer owns:
//
//   * one bump Arena per worker (mapper m, then combiner j), node-bound in
//     numa mode to the worker's pinned CPU's socket — intermediate KV
//     payloads and container nodes allocate from their own thread's arena
//     and are reclaimed wholesale by end_run();
//   * the Ring slot-storage hook (spsc::SlotStorage): huge-page-backed
//     blocks, bound in numa mode to the *consumer's* node — the combiner
//     that drains a ring reads every slot, the producer writes each slot
//     once, so consumer-local placement wins (the consumer additionally
//     first-touches the slots via Ring::prefault before the pipeline
//     starts).
//
// Placement degrades gracefully per page_caps(): no mbind -> first-touch
// only, no THP -> small pages, no mmap -> aligned heap. Never an error.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "mem/arena.hpp"
#include "mem/pages.hpp"
#include "spsc/ring.hpp"
#include "topology/pinning.hpp"
#include "topology/topology.hpp"

namespace ramr::mem {

// End-of-run snapshot, copied by the driver into engine::MemStats.
struct LayerStats {
  std::string mode;                  // "arena" | "numa"
  std::size_t arena_high_water = 0;  // deepest single worker arena (bytes)
  std::size_t arena_chunk_bytes = 0; // total arena backing storage held
  std::size_t arena_resets = 0;      // wholesale resets performed so far
  std::size_t ring_bytes = 0;        // ring slot storage placed via layer
  std::size_t ring_reuses = 0;       // ring blocks served from the spare list
  bool hugepages = false;            // any placed block got MADV_HUGEPAGE
  bool mbind = false;                // any placed block was node-bound
};

class MemoryLayer {
 public:
  // The plan decides worker->node assignments (numa mode only; arena mode
  // never binds). Arenas are created eagerly but allocate lazily, so the
  // owner thread's first allocation first-touches the chunk.
  MemoryLayer(MemMode mode, const topo::Topology& topo,
              const topo::PinningPlan& plan);

  MemoryLayer(const MemoryLayer&) = delete;
  MemoryLayer& operator=(const MemoryLayer&) = delete;

  MemMode mode() const { return mode_; }

  // True when node-local placement (binding + consumer first-touch) is
  // active — numa mode on a host where it can matter.
  bool placement() const { return mode_ == MemMode::kNuma; }

  Arena& mapper_arena(std::size_t m) { return arenas_[m]; }
  Arena& combiner_arena(std::size_t j) {
    return arenas_[num_mappers_ + j];
  }

  // NUMA node (socket) of the worker's pinned CPU; -1 when unpinned or
  // placement is off.
  int node_of_mapper(std::size_t m) const;
  int node_of_combiner(std::size_t j) const;

  // Slot-storage hook for a Ring whose consumer lives on `node` (-1 = no
  // binding). The returned storage (and this layer) must outlive the Ring.
  //
  // Freed ring blocks are parked on a spare list instead of unmapped, and
  // the next allocation of the same (bytes, align, node) reuses the block —
  // placement, huge-page advice and faulted-in pages included. A warm pool
  // set re-running the pipelined strategy therefore rebuilds its rings
  // without any mmap/mbind traffic (LayerStats::ring_reuses counts the
  // hits). The spare list is bounded; overflow blocks unmap as before.
  spsc::SlotStorage ring_storage(int node);

  // Run-boundary teardown: resets every arena wholesale, then folds arena
  // and ring placement stats into the returned snapshot. Call only while
  // no worker is allocating (after the pools joined).
  LayerStats end_run();

 private:
  struct NodeStorage {
    MemoryLayer* layer;
    int node;
  };

  void* ring_alloc(std::size_t bytes, std::size_t align, int node);
  void ring_free(void* data);

  static void* storage_alloc(std::size_t bytes, std::size_t align,
                             void* ctx);
  static void storage_free(void* data, std::size_t bytes, void* ctx);

  MemMode mode_;
  std::size_t num_mappers_;
  std::vector<int> mapper_node_;
  std::vector<int> combiner_node_;
  std::vector<Arena> arenas_;  // sized once; element addresses are stable
  std::vector<std::unique_ptr<NodeStorage>> node_storages_;

  struct RingBlock {
    PageBuffer buffer;
    std::size_t align = 0;
    int node = -1;
  };

  // Ring blocks are created/destroyed on cold paths (run setup/teardown)
  // but possibly from bench threads too — a mutex keeps this boring.
  std::mutex ring_mutex_;
  std::unordered_map<void*, RingBlock> ring_blocks_;
  std::vector<RingBlock> ring_spares_;
  std::size_t ring_bytes_ = 0;
  std::size_t ring_reuses_ = 0;
  bool ring_huge_ = false;
  bool ring_bound_ = false;
};

}  // namespace ramr::mem
