#include "mem/arena.hpp"

#include <cstdint>

namespace ramr::mem {

namespace {

std::size_t align_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Chunk& Arena::grow(std::size_t min_bytes) {
  // Reuse a kept (reset) chunk when one is large enough before mapping a
  // new one.
  while (current_ + 1 < chunks_.size()) {
    ++current_;
    if (chunks_[current_].buffer.size() >= min_bytes) {
      return chunks_[current_];
    }
  }
  const std::size_t bytes = min_bytes > chunk_bytes_ ? min_bytes : chunk_bytes_;
  chunks_.emplace_back();
  chunks_.back().buffer =
      PageBuffer(bytes, alignof(std::max_align_t), node_, want_huge_);
  current_ = chunks_.size() - 1;
  stats_.chunk_bytes += bytes;
  stats_.chunks = chunks_.size();
  return chunks_.back();
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  if (chunks_.empty()) grow(bytes + align);
  Chunk* chunk = &chunks_[current_];
  std::size_t at = align_up(chunk->offset, align);
  if (at + bytes > chunk->buffer.size()) {
    chunk = &grow(bytes + align);
    at = align_up(chunk->offset, align);
  }
  chunk->offset = at + bytes;
  stats_.allocated += bytes;
  if (stats_.allocated > stats_.high_water) {
    stats_.high_water = stats_.allocated;
  }
  return static_cast<char*>(chunk->buffer.data()) + at;
}

void Arena::reset() {
  for (Chunk& chunk : chunks_) chunk.offset = 0;
  current_ = 0;
  stats_.allocated = 0;
  ++stats_.resets;
}

void Arena::release() {
  chunks_.clear();
  current_ = 0;
  stats_.allocated = 0;
  stats_.chunk_bytes = 0;
  stats_.chunks = 0;
}

}  // namespace ramr::mem
