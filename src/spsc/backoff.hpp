// Backoff policies for full-queue (producer) and empty-queue (consumer)
// conditions.
//
// Paper Sec. III-A, "Sleep on failed push": pushes must always eventually
// succeed (dropping or overwriting elements violates correctness), so a
// mapper facing a full queue must wait. The paper found that sleeping after
// a failed trial beats busy-waiting — the sleeping mapper frees the
// (SMT-shared) core for the combiner that must drain the queue.
//
// Every policy exposes the same surface:
//
//   bool wait()      — block/spin once; returns false when a bound stop
//                      flag is raised (cooperative cancellation), so a
//                      waiter never sleeps through a peer failure;
//   void reset()     — a successful operation happened, restart the ladder;
//   void bind(flag)  — observe a cancellation flag (usually
//                      CancellationToken::flag()); nullptr = never stop;
//   sleep_count()    — actual sleeps performed (instrumentation for the
//                      backoff ablation bench; busy-wait reports 0).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>

namespace ramr::spsc {

// Architectural pause; keeps the spinning hyper-thread from starving its
// sibling and saves power. Falls back to a compiler barrier elsewhere.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

namespace detail {
inline bool stop_raised(const std::atomic<bool>* stop) {
  return stop != nullptr && stop->load(std::memory_order_acquire);
}
}  // namespace detail

// Busy-wait: pure spinning with a periodic yield so that oversubscribed
// hosts (more threads than cores — always true for the modelled platforms
// run on a laptop) still make progress within a scheduling quantum.
class BusyWaitBackoff {
 public:
  bool wait() {
    if (detail::stop_raised(stop_)) return false;
    if ((++spins_ & 0x3ffU) == 0) {
      std::this_thread::yield();
    } else {
      cpu_relax();
    }
    return true;
  }
  void reset() { spins_ = 0; }
  void bind(const std::atomic<bool>* stop) { stop_ = stop; }
  std::size_t sleep_count() const { return 0; }

 private:
  const std::atomic<bool>* stop_ = nullptr;
  unsigned spins_ = 0;
};

// Sleep-on-failed-push: spin briefly (the queue usually frees space within
// a few hundred cycles), then sleep for a fixed period. This is the RAMR
// default.
class SleepBackoff {
 public:
  explicit SleepBackoff(std::chrono::microseconds sleep_period,
                        unsigned spin_limit = 64)
      : sleep_period_(sleep_period), spin_limit_(spin_limit) {}

  bool wait() {
    if (detail::stop_raised(stop_)) return false;
    if (spins_ < spin_limit_) {
      ++spins_;
      cpu_relax();
    } else {
      ++sleeps_;
      std::this_thread::sleep_for(sleep_period_);
    }
    return true;
  }
  void reset() { spins_ = 0; }
  void bind(const std::atomic<bool>* stop) { stop_ = stop; }

  // Number of actual sleeps performed since construction (instrumentation
  // for the backoff ablation bench).
  std::size_t sleep_count() const { return sleeps_; }

 private:
  std::chrono::microseconds sleep_period_;
  unsigned spin_limit_;
  const std::atomic<bool>* stop_ = nullptr;
  unsigned spins_ = 0;
  std::size_t sleeps_ = 0;
};

// Exponential, capped variant: spin briefly, then sleep starting at
// `initial` and doubling after every consecutive sleep up to `cap`. Long
// combiner outages cost far fewer wakeups than the fixed-period policy
// (each wakeup of a blocked producer steals issue slots from the SMT
// sibling the combiner needs), while short stalls still resolve at the
// initial period. reset() returns to the spin stage and the initial
// period. Selectable via RuntimeConfig::backoff / RAMR_BACKOFF=exp.
class ExponentialSleepBackoff {
 public:
  ExponentialSleepBackoff(std::chrono::microseconds initial,
                          std::chrono::microseconds cap,
                          unsigned spin_limit = 64)
      : initial_(initial), cap_(cap), current_(initial),
        spin_limit_(spin_limit) {}

  bool wait() {
    if (detail::stop_raised(stop_)) return false;
    if (spins_ < spin_limit_) {
      ++spins_;
      cpu_relax();
      return true;
    }
    ++sleeps_;
    std::this_thread::sleep_for(current_);
    const std::chrono::microseconds cap = effective_cap();
    current_ = current_ * 2 > cap ? cap : current_ * 2;
    if (current_ > cap) current_ = cap;  // cap was lowered below current
    return true;
  }
  void reset() {
    spins_ = 0;
    current_ = initial_;
  }
  void bind(const std::atomic<bool>* stop) { stop_ = stop; }

  // Observe a live cap (microseconds) instead of the constructed one; the
  // adaptive governor retunes the cap mid-phase through this cell (see
  // engine::TuningControl::sleep_cap_cell). A cap below the initial period
  // clamps to it — the ladder never sleeps shorter than `initial`.
  void bind_cap(const std::atomic<std::uint64_t>* cap_us) {
    cap_source_ = cap_us;
  }

  std::size_t sleep_count() const { return sleeps_; }
  std::chrono::microseconds current_period() const { return current_; }

 private:
  std::chrono::microseconds effective_cap() const {
    if (cap_source_ == nullptr) return cap_;
    const auto live = std::chrono::microseconds(
        cap_source_->load(std::memory_order_relaxed));
    return live < initial_ ? initial_ : live;
  }

  std::chrono::microseconds initial_;
  std::chrono::microseconds cap_;
  std::chrono::microseconds current_;
  unsigned spin_limit_;
  const std::atomic<bool>* stop_ = nullptr;
  const std::atomic<std::uint64_t>* cap_source_ = nullptr;
  unsigned spins_ = 0;
  std::size_t sleeps_ = 0;
};

}  // namespace ramr::spsc
