// Backoff policies for full-queue (producer) and empty-queue (consumer)
// conditions.
//
// Paper Sec. III-A, "Sleep on failed push": pushes must always eventually
// succeed (dropping or overwriting elements violates correctness), so a
// mapper facing a full queue must wait. The paper found that sleeping after
// a failed trial beats busy-waiting — the sleeping mapper frees the
// (SMT-shared) core for the combiner that must drain the queue.
#pragma once

#include <chrono>
#include <cstddef>
#include <thread>

namespace ramr::spsc {

// Architectural pause; keeps the spinning hyper-thread from starving its
// sibling and saves power. Falls back to a compiler barrier elsewhere.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

// Busy-wait: pure spinning with a periodic yield so that oversubscribed
// hosts (more threads than cores — always true for the modelled platforms
// run on a laptop) still make progress within a scheduling quantum.
class BusyWaitBackoff {
 public:
  void wait() {
    if ((++spins_ & 0x3ffU) == 0) {
      std::this_thread::yield();
    } else {
      cpu_relax();
    }
  }
  void reset() { spins_ = 0; }

 private:
  unsigned spins_ = 0;
};

// Sleep-on-failed-push: spin briefly (the queue usually frees space within
// a few hundred cycles), then sleep for a fixed period. This is the RAMR
// default.
class SleepBackoff {
 public:
  explicit SleepBackoff(std::chrono::microseconds sleep_period,
                        unsigned spin_limit = 64)
      : sleep_period_(sleep_period), spin_limit_(spin_limit) {}

  void wait() {
    if (spins_ < spin_limit_) {
      ++spins_;
      cpu_relax();
    } else {
      ++sleeps_;
      std::this_thread::sleep_for(sleep_period_);
    }
  }
  void reset() { spins_ = 0; }

  // Number of actual sleeps performed since construction (instrumentation
  // for the backoff ablation bench).
  std::size_t sleep_count() const { return sleeps_; }

 private:
  std::chrono::microseconds sleep_period_;
  unsigned spin_limit_;
  unsigned spins_ = 0;
  std::size_t sleeps_ = 0;
};

}  // namespace ramr::spsc
