// Mutex-protected, dynamically allocated queue — the ablation baseline.
//
// Paper Sec. III-A: "A fixed-size queue has been favored instead of a
// dynamically resizable queue because of the limited scalability and
// performance penalty imposed by dynamic memory allocators". This class is
// what RAMR deliberately does NOT use; it exists so the ablation bench
// (bench_ablation_queue) can quantify that claim on real hardware.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ramr::spsc {

template <typename T>
class DynamicQueue {
 public:
  // `soft_capacity` bounds occupancy for fairness with the fixed ring
  // (0 = unbounded, the classic resizable-deque behaviour).
  explicit DynamicQueue(std::size_t soft_capacity = 0)
      : soft_capacity_(soft_capacity) {}

  void push(T value) {
    std::unique_lock lock(mutex_);
    if (soft_capacity_ != 0) {
      not_full_.wait(lock, [&] { return items_.size() < soft_capacity_; });
    }
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
  }

  bool try_push(T value) {
    {
      std::lock_guard lock(mutex_);
      if (soft_capacity_ != 0 && items_.size() >= soft_capacity_) {
        return false;
      }
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard lock(mutex_);
      if (items_.empty()) return out;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  // Blocking pop; returns nullopt only after close() with the queue empty.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t soft_capacity_;
  bool closed_ = false;
};

}  // namespace ramr::spsc
