// Plain Lamport SPSC queue — the textbook variant WITHOUT the cached-index
// optimisation.
//
// The paper (Sec. III-A) settled on the Boost SPSC queue "after
// benchmarking several SPSC buffers in terms of concurrent read-write
// throughput"; this class reproduces the baseline of that comparison. Every
// try_push reads the consumer-owned head and every try_pop reads the
// producer-owned tail, so under load the control variables ping-pong
// between the two cores on every operation — exactly the coherence traffic
// Ring<T>'s cached indices avoid. bench_spsc_queue quantifies the gap.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/cacheline.hpp"
#include "common/error.hpp"

namespace ramr::spsc {

template <typename T>
class LamportQueue {
  static_assert(std::is_nothrow_move_constructible_v<T>);

 public:
  explicit LamportQueue(std::size_t capacity) {
    if (capacity < 2) throw ConfigError("LamportQueue capacity must be >= 2");
    std::size_t pow2 = 2;
    while (pow2 < capacity) pow2 <<= 1;
    capacity_ = pow2;
    mask_ = pow2 - 1;
    slots_ = static_cast<T*>(::operator new[](
        capacity_ * sizeof(T), std::align_val_t(alignof(T))));
  }

  ~LamportQueue() {
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    for (std::size_t i = head; i != tail; ++i) slots_[i & mask_].~T();
    ::operator delete[](static_cast<void*>(slots_),
                        std::align_val_t(alignof(T)));
  }

  LamportQueue(const LamportQueue&) = delete;
  LamportQueue& operator=(const LamportQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  bool try_push(T&& value) {
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    // No producer-side cache: this acquire hits the consumer's line every
    // single call — the cost the optimised ring removes.
    const std::size_t head = head_.value.load(std::memory_order_acquire);
    if (tail - head >= capacity_) return false;
    ::new (static_cast<void*>(&slots_[tail & mask_])) T(std::move(value));
    tail_.value.store(tail + 1, std::memory_order_release);
    return true;
  }
  bool try_push(const T& value) { return try_push(T(value)); }

  bool try_pop(T& out) {
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.value.load(std::memory_order_acquire);
    if (head == tail) return false;
    T& slot = slots_[head & mask_];
    out = std::move(slot);
    slot.~T();
    head_.value.store(head + 1, std::memory_order_release);
    return true;
  }

  std::size_t size() const {
    return tail_.value.load(std::memory_order_acquire) -
           head_.value.load(std::memory_order_acquire);
  }
  bool empty() const { return size() == 0; }

 private:
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  T* slots_ = nullptr;
  CacheAligned<std::atomic<std::size_t>> head_{std::size_t{0}};
  CacheAligned<std::atomic<std::size_t>> tail_{std::size_t{0}};
};

}  // namespace ramr::spsc
