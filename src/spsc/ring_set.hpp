// A combiner's view over its assigned set of mapper queues.
//
// Paper Fig. 2: every mapper writes to its own queue; each combiner owns a
// disjoint set of queues (set size = mapper:combiner ratio). RingSet is the
// consumer-side helper that drains such a set fairly (round-robin across
// queues, batched consume per queue) and implements the termination
// protocol: "Before exiting, combine workers consume any remaining data and
// empty their assigned queues."
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "spsc/backoff.hpp"
#include "spsc/ring.hpp"

namespace ramr::spsc {

template <typename T>
class RingSet {
 public:
  explicit RingSet(std::vector<Ring<T>*> rings) : rings_(std::move(rings)) {}

  std::size_t queue_count() const { return rings_.size(); }

  // One round-robin sweep: consume up to `batch` elements from each queue.
  // Returns total elements consumed this sweep.
  template <typename F>
  std::size_t sweep(F&& f, std::size_t batch) {
    std::size_t consumed = 0;
    for (std::size_t i = 0; i < rings_.size(); ++i) {
      Ring<T>& ring = *rings_[cursor_];
      cursor_ = (cursor_ + 1) % rings_.size();
      consumed += ring.consume_batch(f, batch);
    }
    return consumed;
  }

  // True when every assigned queue is closed and drained — the combiner may
  // exit. Checking closed() *before* a final emptiness check avoids the race
  // where a producer pushes then closes between our two loads.
  bool finished() const {
    for (const Ring<T>* ring : rings_) {
      if (!ring->closed() || !ring->empty()) return false;
    }
    return true;
  }

  // Drain loop: sweeps until every queue is closed and empty, idling with
  // `backoff` on empty sweeps; exits early when the backoff's bound
  // cancellation flag stops the wait. `f` is invoked with std::span<T>
  // blocks.
  template <typename F, typename Backoff>
  std::size_t drain(F&& f, std::size_t batch, Backoff& backoff) {
    std::size_t total = 0;
    for (;;) {
      const std::size_t got = sweep(f, batch);
      total += got;
      if (got == 0) {
        if (finished()) break;
        if (!backoff.wait()) break;
      } else {
        backoff.reset();
      }
    }
    return total;
  }

 private:
  std::vector<Ring<T>*> rings_;
  std::size_t cursor_ = 0;
};

}  // namespace ramr::spsc
