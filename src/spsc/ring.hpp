// Fixed-capacity single-producer/single-consumer lock-free ring buffer.
//
// This is RAMR's mapper-to-combiner pipe (paper Sec. III-A). Design follows
// Lamport's wait-free SPSC queue with the two standard refinements the paper
// inherits from boost::lockfree::spsc_queue and then extends:
//
//   * head/tail live on separate cache lines, and each side keeps a *cached*
//     copy of the opposite index, refreshed only when the cached value makes
//     the operation look impossible — this removes almost all cross-core
//     coherence traffic in the steady state;
//   * static allocation (the paper: dynamic allocators scale poorly, so a
//     fixed-size queue is favored over a resizable one);
//   * batched consume (`consume_batch`): the consumer processes up to
//     `max_elements` *contiguous* elements per control-variable update,
//     which both cuts contention on the shared indices and favors spatial
//     locality (paper Sec. III-A "Batched reads", evaluated in Sec. IV-C).
//
// Memory ordering: the producer publishes with a release store to tail; the
// consumer acquires tail before reading slots, and symmetrically for head.
// A close() flag (release, set by the producer after its last push) gives
// combiners a sentinel-free termination protocol.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <new>
#include <span>
#include <type_traits>
#include <utility>

#include "common/cacheline.hpp"
#include "common/error.hpp"

namespace ramr::spsc {

// Per-side instrumentation; maintained without atomics because each side is
// touched by exactly one thread. Snapshot via Ring::producer_stats() /
// consumer_stats() after the pipeline quiesces.
struct ProducerStats {
  std::size_t pushes = 0;        // elements successfully pushed
  std::size_t failed_pushes = 0; // try_push calls that found the ring full
  std::size_t push_batches = 0;  // try_push_batch calls that pushed > 0
  std::size_t head_refreshes = 0; // acquire reloads of the consumer's head
};

// External slot-array allocator hook: lets a memory subsystem place the
// slot storage (huge pages, NUMA binding) without this header depending on
// it. Both function pointers must be set; `ctx` is passed through verbatim
// and must outlive the Ring. The returned block must be at least `bytes`
// large and `align`-aligned.
struct SlotStorage {
  void* (*alloc)(std::size_t bytes, std::size_t align, void* ctx) = nullptr;
  void (*dealloc)(void* data, std::size_t bytes, void* ctx) = nullptr;
  void* ctx = nullptr;

  explicit operator bool() const { return alloc != nullptr; }
};

struct ConsumerStats {
  std::size_t pops = 0;          // elements successfully consumed
  std::size_t failed_pops = 0;   // try_pop/consume calls that found it empty
  std::size_t batches = 0;       // consume_batch calls that consumed > 0
  std::size_t max_occupancy = 0; // high-water mark observed by the consumer
};

template <typename T>
class Ring {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "Ring<T> requires nothrow-move-constructible elements");

 public:
  // `capacity` is a minimum; rounded up to a power of two (for mask-based
  // index wrapping). One slot is *not* sacrificed: occupancy is derived from
  // monotonically increasing head/tail, so all `capacity_pow2` slots hold
  // data. Throws ConfigError for capacity < 2.
  explicit Ring(std::size_t capacity) : Ring(capacity, SlotStorage{}) {}

  // Places the slot array through `storage` (see SlotStorage) instead of
  // the default heap; the RAMR_MEM subsystem uses this for huge-page /
  // node-bound backing. A null storage falls back to aligned operator new.
  Ring(std::size_t capacity, SlotStorage storage)
      : capacity_(round_up_pow2(capacity)),
        mask_(capacity_ - 1),
        storage_(storage) {
    if (capacity < 2) {
      throw ConfigError("Ring capacity must be >= 2");
    }
    if (storage_) {
      slots_ = static_cast<T*>(storage_.alloc(capacity_ * sizeof(T),
                                              alignof(T), storage_.ctx));
    } else {
      slots_ = static_cast<T*>(::operator new[](
          capacity_ * sizeof(T), std::align_val_t(alignof(T))));
    }
  }

  ~Ring() {
    // Destroy any elements still enqueued.
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    for (std::size_t i = head; i != tail; ++i) {
      slots_[i & mask_].~T();
    }
    if (storage_) {
      storage_.dealloc(static_cast<void*>(slots_), capacity_ * sizeof(T),
                       storage_.ctx);
    } else {
      ::operator delete[](static_cast<void*>(slots_),
                          std::align_val_t(alignof(T)));
    }
  }

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  std::size_t capacity() const { return capacity_; }

  // ----- producer side (exactly one thread) ------------------------------

  // Attempts to enqueue; returns false when the ring is full. Never blocks.
  // The rvalue overload leaves `value` untouched on failure, so a caller may
  // retry with the same object (Ring::push depends on this).
  bool try_push(T&& value) {
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity_) {
      cached_head_ = head_.value.load(std::memory_order_acquire);
      ++producer_stats_.head_refreshes;
      if (tail - cached_head_ >= capacity_) {
        ++producer_stats_.failed_pushes;
        return false;
      }
    }
    ::new (static_cast<void*>(&slots_[tail & mask_])) T(std::move(value));
    tail_.value.store(tail + 1, std::memory_order_release);
    ++producer_stats_.pushes;
    return true;
  }

  // Batched publication — the producer-side counterpart of consume_batch
  // (paper Sec. III-A applied symmetrically): moves up to batch.size()
  // elements into the ring as at most two contiguous spans, then publishes
  // ONE release store to tail. A full block therefore costs one
  // control-variable update and at most one cached-head refresh, instead
  // of one of each per element. Returns the number of elements moved (a
  // prefix of `batch`); 0 when the ring is full (counted as one failed
  // push). Unmoved elements stay valid in `batch` — retry with
  // batch.subspan(n).
  std::size_t try_push_batch(std::span<T> batch) {
    if (batch.empty()) return 0;
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    std::size_t free_slots = capacity_ - (tail - cached_head_);
    if (free_slots < batch.size()) {
      cached_head_ = head_.value.load(std::memory_order_acquire);
      ++producer_stats_.head_refreshes;
      free_slots = capacity_ - (tail - cached_head_);
      if (free_slots == 0) {
        ++producer_stats_.failed_pushes;
        return 0;
      }
    }
    const std::size_t n =
        batch.size() < free_slots ? batch.size() : free_slots;
    const std::size_t first_index = tail & mask_;
    const std::size_t until_wrap = capacity_ - first_index;
    const std::size_t first_len = n < until_wrap ? n : until_wrap;
    for (std::size_t i = 0; i < first_len; ++i) {
      ::new (static_cast<void*>(&slots_[first_index + i]))
          T(std::move(batch[i]));
    }
    for (std::size_t i = first_len; i < n; ++i) {
      ::new (static_cast<void*>(&slots_[i - first_len]))
          T(std::move(batch[i]));
    }
    tail_.value.store(tail + n, std::memory_order_release);
    producer_stats_.pushes += n;
    ++producer_stats_.push_batches;
    return n;
  }

  bool try_push(const T& value) { return try_push(T(value)); }

  // Enqueues, waiting with `backoff` while the ring is full. Elements are
  // never dropped (paper: "Pushing elements in the queue always succeed[s]").
  // Returns false — with `value` discarded — only when the backoff's bound
  // cancellation flag stops the wait; an unbound backoff never stops, so
  // plain callers may ignore the result.
  template <typename Backoff>
  bool push(T value, Backoff& backoff) {
    while (!try_push(std::move(value))) {
      if (!backoff.wait()) return false;
    }
    backoff.reset();
    return true;
  }

  // Marks the stream complete. Must be called by the producer after its last
  // push; consumers observing closed() && empty() may terminate.
  void close() { closed_.value.store(true, std::memory_order_release); }

  const ProducerStats& producer_stats() const { return producer_stats_; }

  // ----- consumer side (exactly one thread) ------------------------------

  // Attempts to dequeue one element into `out`; false when empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.value.load(std::memory_order_acquire);
      if (head == cached_tail_) {
        ++consumer_stats_.failed_pops;
        return false;
      }
      note_occupancy(cached_tail_ - head);
    }
    T& slot = slots_[head & mask_];
    out = std::move(slot);
    slot.~T();
    head_.value.store(head + 1, std::memory_order_release);
    ++consumer_stats_.pops;
    return true;
  }

  // Batched consume (paper Sec. III-A / IV-C): applies `f` to up to
  // `max_elements` already-enqueued elements as at most two contiguous
  // spans (the ring may wrap once), then publishes a single head update.
  // `f` receives `std::span<T>`; elements are destroyed after `f` returns.
  // Returns the number of elements consumed (0 when the ring is empty).
  template <typename F>
  std::size_t consume_batch(F&& f, std::size_t max_elements) {
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.value.load(std::memory_order_acquire);
      if (head == cached_tail_) {
        ++consumer_stats_.failed_pops;
        return 0;
      }
      note_occupancy(cached_tail_ - head);
    }
    std::size_t available = cached_tail_ - head;
    if (available > max_elements) available = max_elements;
    if (available == 0) return 0;  // max_elements == 0

    const std::size_t first_index = head & mask_;
    const std::size_t until_wrap = capacity_ - first_index;
    const std::size_t first_len = available < until_wrap ? available : until_wrap;

    f(std::span<T>(&slots_[first_index], first_len));
    destroy_range(first_index, first_len);
    if (first_len < available) {
      const std::size_t second_len = available - first_len;
      f(std::span<T>(&slots_[0], second_len));
      destroy_range(0, second_len);
    }
    head_.value.store(head + available, std::memory_order_release);
    consumer_stats_.pops += available;
    ++consumer_stats_.batches;
    return available;
  }

  // True when the producer closed the stream. Pair with empty(): a consumer
  // may stop once closed() && empty() — the release/acquire on tail ensures
  // all pushes preceding close() are visible before empty() returns true.
  bool closed() const { return closed_.value.load(std::memory_order_acquire); }

  const ConsumerStats& consumer_stats() const { return consumer_stats_; }

  // ----- either side (approximate when the queue is in motion) -----------

  std::size_t size() const {
    const std::size_t tail = tail_.value.load(std::memory_order_acquire);
    const std::size_t head = head_.value.load(std::memory_order_acquire);
    return tail - head;
  }
  bool empty() const { return size() == 0; }

  // First-touch placement hook: touches every page of the slot array so
  // the kernel backs it on the calling thread's NUMA node. Must run on the
  // CONSUMER thread (the side that reads every slot) BEFORE the producer's
  // first push, and must not race either side — the engine calls it from
  // a blocking pre-phase pass on the combiner pool.
  void prefault() {
    auto* bytes = reinterpret_cast<volatile unsigned char*>(slots_);
    const std::size_t total = capacity_ * sizeof(T);
    for (std::size_t off = 0; off < total; off += 4096) {
      bytes[off] = 0;
    }
    if (total > 0) bytes[total - 1] = 0;
  }

 private:
  static std::size_t round_up_pow2(std::size_t v) {
    if (v < 2) return 2;
    return std::bit_ceil(v);
  }

  void note_occupancy(std::size_t occupancy) {
    if (occupancy > consumer_stats_.max_occupancy) {
      consumer_stats_.max_occupancy = occupancy;
    }
  }

  void destroy_range(std::size_t first_index, std::size_t len) {
    if constexpr (!std::is_trivially_destructible_v<T>) {
      for (std::size_t i = 0; i < len; ++i) {
        slots_[first_index + i].~T();
      }
    }
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  SlotStorage storage_{};
  T* slots_ = nullptr;

  // Consumer-owned line: head plus the consumer's cached copy of tail.
  CacheAligned<std::atomic<std::size_t>> head_{std::size_t{0}};
  std::size_t cached_tail_ = 0;  // adjacent to head_ is fine: consumer-only
  ConsumerStats consumer_stats_{};

  // Producer-owned line: tail plus the producer's cached copy of head.
  CacheAligned<std::atomic<std::size_t>> tail_{std::size_t{0}};
  std::size_t cached_head_ = 0;
  ProducerStats producer_stats_{};

  CacheAligned<std::atomic<bool>> closed_{false};
};

}  // namespace ramr::spsc
