// Anchor translation unit: instantiates the SPSC templates once so that
// header breakage is caught when building the library itself, not first by
// a downstream target.
#include "spsc/dynamic_queue.hpp"
#include "spsc/ring.hpp"
#include "spsc/ring_set.hpp"

namespace ramr::spsc {

template class Ring<int>;
template class DynamicQueue<int>;
template class RingSet<int>;

}  // namespace ramr::spsc
