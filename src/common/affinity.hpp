// Thread-to-CPU affinity wrapper.
//
// The paper pins threads with sched_setaffinity(); this wraps the Linux call
// and degrades to a no-op on platforms without affinity support so that the
// functional runtime stays portable.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace ramr::affinity {

// True when the platform supports pinning (Linux with sched_setaffinity).
bool supported();

// Pin the calling thread to the single logical CPU `cpu`. Returns false when
// pinning is unsupported or the CPU id is not usable on this machine (e.g.
// the simulator asked for cpu 97 of a modelled Xeon Phi on a small host);
// the runtime treats that as "run unpinned", never as an error.
bool pin_current_thread(std::size_t cpu);

// Restrict the calling thread to a CPU set; same failure semantics.
bool pin_current_thread(const std::vector<std::size_t>& cpus);

// The CPU the calling thread last ran on, if the platform can tell.
std::optional<std::size_t> current_cpu();

// Number of logical CPUs usable by this process.
std::size_t usable_cpu_count();

}  // namespace ramr::affinity
