// Typed access to environment-variable tuning knobs.
//
// The paper (Sec. III): "In RAMR, the task size can be finely tuned via a set
// of environmental variables." This header provides the typed parsing layer;
// the knob names themselves live in common/config.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ramr::env {

// Raw lookup; std::nullopt when the variable is unset or empty.
std::optional<std::string> get(const std::string& name);

// Parsed lookups. Throw ramr::ConfigError when the variable is set but does
// not parse or is out of the representable range; return `fallback` when the
// variable is unset.
std::int64_t get_int(const std::string& name, std::int64_t fallback);
std::uint64_t get_uint(const std::string& name, std::uint64_t fallback);
double get_double(const std::string& name, double fallback);
bool get_bool(const std::string& name, bool fallback);
std::string get_string(const std::string& name, const std::string& fallback);

// Scoped override for tests: sets `name=value` on construction and restores
// the previous state on destruction. Not thread-safe (setenv never is).
class ScopedOverride {
 public:
  ScopedOverride(const std::string& name, const std::string& value);
  ~ScopedOverride();

  ScopedOverride(const ScopedOverride&) = delete;
  ScopedOverride& operator=(const ScopedOverride&) = delete;

 private:
  std::string name_;
  std::optional<std::string> previous_;
};

}  // namespace ramr::env
