// Cooperative cancellation for the execution engine.
//
// The decoupled pipeline enlarges the failure surface versus a fused
// runtime: a dead combiner strands mappers on full SPSC rings, and a dead
// mapper strands combiners on open rings. One CancellationToken per run()
// gives every worker a single flag to poll at its natural scheduling points
// (task boundaries, failed pushes, drain sweeps, backoff waits) so that
// peer failure, a run deadline, or a stall verdict propagates to the whole
// pipeline promptly — not only to the workers that happen to block.
//
// Protocol: the first cancel() wins and records an attributed snapshot
// (cause, phase, worker, detail); later calls are no-ops. Workers that
// observe the flag unwind *quietly* (via CancelledError, swallowed at the
// worker-job layer) so that the pool carrying the root-cause exception is
// the only pool that reports an error — the join protocol then rethrows
// the real failure, not a secondary "cancelled" symptom.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace ramr::common {

// Why a run was cancelled; kNone means "not cancelled".
enum class CancelCause {
  kNone = 0,
  kWorkerFailed,  // a peer worker threw; its exception is the root cause
  kDeadline,      // the configured run deadline elapsed
  kStall,         // the watchdog saw an active worker make no progress
  kExternal,      // cancelled from outside the engine
};

inline const char* to_string(CancelCause cause) {
  switch (cause) {
    case CancelCause::kNone:
      return "none";
    case CancelCause::kWorkerFailed:
      return "worker-failed";
    case CancelCause::kDeadline:
      return "deadline";
    case CancelCause::kStall:
      return "stall";
    case CancelCause::kExternal:
      return "external";
  }
  return "?";
}

// Attributed snapshot of the winning cancel() call.
struct CancelState {
  CancelCause cause = CancelCause::kNone;
  std::string phase;   // "map-combine", "reduce", ... ("" = unknown)
  std::string worker;  // "mapper-2", "combiner-0", ... ("" = unknown)
  std::string detail;  // free-form: exception text, elapsed times, ...

  std::string describe() const {
    std::string s = "run cancelled (";
    s += to_string(cause);
    s += ")";
    if (!phase.empty()) s += " in phase " + phase;
    if (!worker.empty()) s += " at " + worker;
    if (!detail.empty()) s += ": " + detail;
    return s;
  }
};

class CancellationToken {
 public:
  // First call wins and returns true; the snapshot is immutable afterwards.
  // Safe to call from any thread, including cancel-vs-cancel races.
  bool cancel(CancelCause cause, std::string phase = {},
              std::string worker = {}, std::string detail = {}) {
    std::lock_guard lock(mutex_);
    if (state_.cause != CancelCause::kNone) return false;
    state_.cause = cause;
    state_.phase = std::move(phase);
    state_.worker = std::move(worker);
    state_.detail = std::move(detail);
    // Published while still holding the mutex: a reader that acquires the
    // flag and then locks the mutex is guaranteed to see the full snapshot.
    flag_.store(true, std::memory_order_release);
    return true;
  }

  // The hot-path poll: one acquire load.
  bool cancelled() const { return flag_.load(std::memory_order_acquire); }

  // The raw flag, for binding into layers that must stay independent of
  // this header's heavier machinery (e.g. spsc backoff classes).
  const std::atomic<bool>& flag() const { return flag_; }

  // Copy of the winning snapshot (cause == kNone when not cancelled).
  CancelState snapshot() const {
    std::lock_guard lock(mutex_);
    return state_;
  }

 private:
  mutable std::mutex mutex_;
  CancelState state_;
  std::atomic<bool> flag_{false};
};

// Internal control-flow exception: thrown by engine plumbing (full-ring
// push loops, injected stalls) to unwind a worker out of app code once the
// token is set. Worker-job wrappers catch it and exit *quietly* — it must
// never surface to the caller of run().
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

// The structured error run() throws when a watchdog verdict (deadline or
// stall) — rather than a worker exception — terminated the run. Carries the
// full attributed snapshot for programmatic inspection.
class AbortError : public Error {
 public:
  explicit AbortError(CancelState state)
      : Error(state.describe()), state_(std::move(state)) {}

  CancelCause cause() const { return state_.cause; }
  const std::string& phase() const { return state_.phase; }
  const std::string& worker() const { return state_.worker; }
  const CancelState& state() const { return state_; }

 private:
  CancelState state_;
};

}  // namespace ramr::common
