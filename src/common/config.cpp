#include "common/config.hpp"

#include <algorithm>
#include <sstream>

#include "common/env.hpp"
#include "common/error.hpp"

namespace ramr {

PinPolicy parse_pin_policy(const std::string& name) {
  if (name == "ramr" || name == "paired") return PinPolicy::kRamrPaired;
  if (name == "rr" || name == "round_robin") return PinPolicy::kRoundRobin;
  if (name == "os" || name == "default" || name == "none") {
    return PinPolicy::kOsDefault;
  }
  throw ConfigError("unknown pin policy '" + name +
                    "' (expected ramr|rr|os)");
}

std::string to_string(PinPolicy policy) {
  switch (policy) {
    case PinPolicy::kRamrPaired:
      return "ramr";
    case PinPolicy::kRoundRobin:
      return "rr";
    case PinPolicy::kOsDefault:
      return "os";
  }
  return "?";
}

SplitDistribution parse_split_distribution(const std::string& name) {
  if (name == "rr" || name == "round_robin") {
    return SplitDistribution::kRoundRobin;
  }
  if (name == "block" || name == "blocked") return SplitDistribution::kBlocked;
  throw ConfigError("unknown split distribution '" + name +
                    "' (expected rr|block)");
}

std::string to_string(SplitDistribution distribution) {
  return distribution == SplitDistribution::kRoundRobin ? "rr" : "block";
}

BackoffKind parse_backoff_kind(const std::string& name) {
  if (name == "busy" || name == "spin") return BackoffKind::kBusyWait;
  if (name == "sleep" || name == "fixed") return BackoffKind::kSleep;
  if (name == "exp" || name == "exponential") return BackoffKind::kExponential;
  throw ConfigError("unknown backoff kind '" + name +
                    "' (expected busy|sleep|exp)");
}

std::string to_string(BackoffKind kind) {
  switch (kind) {
    case BackoffKind::kBusyWait:
      return "busy";
    case BackoffKind::kSleep:
      return "sleep";
    case BackoffKind::kExponential:
      return "exp";
  }
  return "?";
}

AdaptMode parse_adapt_mode(const std::string& name) {
  if (name == "off" || name == "0" || name == "no") return AdaptMode::kOff;
  if (name == "probe") return AdaptMode::kProbe;
  if (name == "full" || name == "on") return AdaptMode::kFull;
  throw ConfigError("env knob RAMR_ADAPT: unknown mode '" + name +
                    "' (expected off|probe|full)");
}

std::string to_string(AdaptMode mode) {
  switch (mode) {
    case AdaptMode::kOff:
      return "off";
    case AdaptMode::kProbe:
      return "probe";
    case AdaptMode::kFull:
      return "full";
  }
  return "?";
}

MemMode parse_mem_mode(const std::string& name) {
  if (name == "off" || name == "0" || name == "no") return MemMode::kOff;
  if (name == "arena") return MemMode::kArena;
  if (name == "numa") return MemMode::kNuma;
  throw ConfigError("env knob RAMR_MEM: unknown mode '" + name +
                    "' (expected off|arena|numa)");
}

std::string to_string(MemMode mode) {
  switch (mode) {
    case MemMode::kOff:
      return "off";
    case MemMode::kArena:
      return "arena";
    case MemMode::kNuma:
      return "numa";
  }
  return "?";
}

namespace {

// Rejects an env knob whose value parsed but is outside the sane range,
// with an error that names the variable (the paper's knobs are easy to
// fat-finger from shell scripts; a silently-accepted absurd value turns
// into a mysterious hang or OOM much later).
void check_env_range(const char* name, std::size_t value, std::size_t lo,
                     std::size_t hi) {
  if (value < lo || value > hi) {
    throw ConfigError("env knob " + std::string(name) + "=" +
                      std::to_string(value) + " is out of range [" +
                      std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
}

}  // namespace

RuntimeConfig RuntimeConfig::from_env(RuntimeConfig base) {
  base.num_mappers = env::get_uint(kEnvMappers, base.num_mappers);
  base.num_combiners = env::get_uint(kEnvCombiners, base.num_combiners);
  base.mapper_combiner_ratio =
      env::get_uint(kEnvRatio, base.mapper_combiner_ratio);
  base.task_size = env::get_uint(kEnvTaskSize, base.task_size);
  base.queue_capacity = env::get_uint(kEnvQueueCapacity, base.queue_capacity);
  base.batch_size = env::get_uint(kEnvBatchSize, base.batch_size);
  base.sleep_on_full = env::get_bool(kEnvSleepOnFull, base.sleep_on_full);
  base.sleep_micros = env::get_uint(kEnvSleepMicros, base.sleep_micros);
  base.precombine_slots = env::get_uint(kEnvPrecombine, base.precombine_slots);
  base.sleep_cap_micros =
      env::get_uint(kEnvSleepCapMicros, base.sleep_cap_micros);
  base.max_task_retries =
      env::get_uint(kEnvTaskRetries, base.max_task_retries);
  base.deadline_ms = env::get_uint(kEnvDeadlineMs, base.deadline_ms);
  base.stall_timeout_ms = env::get_uint(kEnvStallMs, base.stall_timeout_ms);
  base.fault_spec = env::get_string(kEnvFaults, base.fault_spec);
  base.telemetry = env::get_bool(kEnvTelemetry, base.telemetry);
  base.pmu_mode = env::get_string(kEnvPmu, base.pmu_mode);
  base.sample_interval_us =
      env::get_uint(kEnvSampleMicros, base.sample_interval_us);
  if (auto policy = env::get(kEnvPinPolicy)) {
    base.pin_policy = parse_pin_policy(*policy);
  }
  if (auto dist = env::get(kEnvSplitDistribution)) {
    base.split_distribution = parse_split_distribution(*dist);
  }
  if (auto kind = env::get(kEnvBackoff)) {
    base.backoff = parse_backoff_kind(*kind);
  }
  if (auto mode = env::get(kEnvAdapt)) {
    base.adapt_mode = parse_adapt_mode(*mode);
  }
  base.plan_cache_path = env::get_string(kEnvPlanCache, base.plan_cache_path);
  if (auto mode = env::get(kEnvMem)) {
    base.mem_mode = parse_mem_mode(*mode);
  }
  base.emit_batch = env::get_uint(kEnvEmitBatch, base.emit_batch);
  base.service_mode = env::get_bool(kEnvService, base.service_mode);
  base.service_max_jobs =
      env::get_uint(kEnvServiceJobs, base.service_max_jobs);
  base.service_queue_depth =
      env::get_uint(kEnvServiceQueue, base.service_queue_depth);
  base.service_max_retries =
      env::get_uint(kEnvServiceRetries, base.service_max_retries);
  base.service_hedge_factor =
      env::get_double(kEnvHedgeFactor, base.service_hedge_factor);
  base.service_breaker_k = env::get_uint(kEnvBreakerK, base.service_breaker_k);
  base.service_shed_watermark =
      env::get_uint(kEnvShedWatermark, base.service_shed_watermark);
  base.observability = env::get_bool(kEnvObs, base.observability);
  base.metrics_path = env::get_string(kEnvMetricsPath, base.metrics_path);
  base.flight_events = env::get_uint(kEnvFlightEvents, base.flight_events);

  // Range checks for the knobs where a parseable-but-absurd value would
  // otherwise fail far from its source (or not at all).
  if (env::get(kEnvRatio)) {
    check_env_range(kEnvRatio, base.mapper_combiner_ratio, 1, 1024);
  }
  if (env::get(kEnvSleepCapMicros)) {
    check_env_range(kEnvSleepCapMicros, base.sleep_cap_micros, 1, 10'000'000);
  }
  if (env::get(kEnvSampleMicros)) {
    check_env_range(kEnvSampleMicros, base.sample_interval_us, 0, 60'000'000);
  }
  if (env::get(kEnvEmitBatch)) {
    // 0 = off; the queue-capacity bound is enforced in resolved() where
    // the capacity itself is final.
    check_env_range(kEnvEmitBatch, base.emit_batch, 0, 1'000'000);
  }
  if (env::get(kEnvServiceJobs)) {
    check_env_range(kEnvServiceJobs, base.service_max_jobs, 0, 1024);
  }
  if (env::get(kEnvServiceQueue)) {
    check_env_range(kEnvServiceQueue, base.service_queue_depth, 0, 100'000);
  }
  if (env::get(kEnvServiceRetries)) {
    check_env_range(kEnvServiceRetries, base.service_max_retries, 0, 100);
  }
  if (env::get(kEnvHedgeFactor)) {
    // 0 = off; when on, anything below 1x the EWMA would hedge every job.
    const double f = base.service_hedge_factor;
    if (f != 0.0 && (f < 1.0 || f > 100.0)) {
      throw ConfigError("env knob " + std::string(kEnvHedgeFactor) + "=" +
                        std::to_string(f) +
                        " is out of range (0 to disable, else [1, 100])");
    }
  }
  if (env::get(kEnvBreakerK)) {
    check_env_range(kEnvBreakerK, base.service_breaker_k, 0, 1000);
  }
  if (env::get(kEnvShedWatermark)) {
    check_env_range(kEnvShedWatermark, base.service_shed_watermark, 0,
                    100'000);
  }
  if (env::get(kEnvFlightEvents)) {
    // Too small and a post-mortem shows nothing; absurd and the "bounded"
    // ring stops being a bound on memory.
    check_env_range(kEnvFlightEvents, base.flight_events, 16, 1'048'576);
  }

  // Remember which plan-relevant knobs the user pinned explicitly so the
  // adaptive controller never overrides them (env > cache > probe > defaults).
  base.env_overrides.workers =
      env::get(kEnvMappers).has_value() || env::get(kEnvCombiners).has_value();
  base.env_overrides.ratio = env::get(kEnvRatio).has_value();
  base.env_overrides.batch_size = env::get(kEnvBatchSize).has_value();
  base.env_overrides.queue_capacity =
      env::get(kEnvQueueCapacity).has_value();
  base.env_overrides.pin_policy = env::get(kEnvPinPolicy).has_value();
  base.env_overrides.sleep_cap = env::get(kEnvSleepCapMicros).has_value();
  base.env_overrides.emit_batch = env::get(kEnvEmitBatch).has_value();
  return base;
}

RuntimeConfig RuntimeConfig::resolved(std::size_t hardware_threads) const {
  RuntimeConfig r = *this;
  if (hardware_threads == 0) {
    throw ConfigError("cannot resolve config against 0 hardware threads");
  }
  if (r.mapper_combiner_ratio == 0) {
    throw ConfigError("mapper:combiner ratio must be >= 1");
  }
  if (r.num_mappers == 0 && r.num_combiners == 0) {
    // Fill the machine with mapper/combiner groups of (ratio + 1) threads.
    const std::size_t group = r.mapper_combiner_ratio + 1;
    const std::size_t groups = std::max<std::size_t>(1, hardware_threads / group);
    r.num_mappers = groups * r.mapper_combiner_ratio;
    r.num_combiners = groups;
  } else if (r.num_combiners == 0) {
    r.num_combiners =
        std::max<std::size_t>(1, r.num_mappers / r.mapper_combiner_ratio);
  } else if (r.num_mappers == 0) {
    r.num_mappers = r.num_combiners * r.mapper_combiner_ratio;
  }
  if (r.num_combiners > r.num_mappers) {
    // Paper Sec. III: the combiner pool "contains a less or equal number of
    // workers compared to the general-purpose pool".
    throw ConfigError("combiner pool larger than mapper pool (" +
                      std::to_string(r.num_combiners) + " > " +
                      std::to_string(r.num_mappers) + ")");
  }
  if (r.num_mappers == 0 || r.num_combiners == 0) {
    // Defensive: the derivations above always yield at least one worker per
    // pool, but a config that somehow resolves to an empty pool must fail
    // here with a clear message, not crash the pipelined strategy later
    // (PipelinedSpsc::collect reads combiner container 0 unconditionally).
    throw ConfigError("config resolved to an empty pool (" +
                      std::to_string(r.num_mappers) + " mappers, " +
                      std::to_string(r.num_combiners) + " combiners)");
  }
  if (r.task_size == 0) throw ConfigError("task size must be >= 1");
  if (r.queue_capacity < 2) throw ConfigError("queue capacity must be >= 2");
  if (r.batch_size == 0) throw ConfigError("batch size must be >= 1");
  if (r.batch_size > r.queue_capacity) {
    throw ConfigError("batch size " + std::to_string(r.batch_size) +
                      " exceeds queue capacity " +
                      std::to_string(r.queue_capacity));
  }
  if (r.emit_batch > r.queue_capacity) {
    throw ConfigError("emit batch " + std::to_string(r.emit_batch) +
                      " exceeds queue capacity " +
                      std::to_string(r.queue_capacity));
  }
  if (r.emit_batch == 0 && r.mem_mode != MemMode::kOff &&
      !r.env_overrides.emit_batch) {
    // Producer-side batching rides along with the memory subsystem by
    // default (the emit buffer is the arena's primary client); an explicit
    // RAMR_EMIT_BATCH=0 opts out.
    r.emit_batch =
        std::min<std::size_t>(32, std::max<std::size_t>(1,
                                                        r.queue_capacity / 2));
  }
  if (!r.sleep_on_full) {
    // Historical spelling of the busy-wait policy wins over the newer knob.
    r.backoff = BackoffKind::kBusyWait;
  }
  if (r.backoff == BackoffKind::kExponential &&
      r.sleep_cap_micros < r.sleep_micros) {
    throw ConfigError("sleep cap " + std::to_string(r.sleep_cap_micros) +
                      "us below initial sleep period " +
                      std::to_string(r.sleep_micros) + "us");
  }
  return r;
}

std::string RuntimeConfig::summary() const {
  std::ostringstream os;
  os << "mappers=" << num_mappers << " combiners=" << num_combiners
     << " ratio=" << mapper_combiner_ratio << " task_size=" << task_size
     << " queue_capacity=" << queue_capacity << " batch=" << batch_size
     << " pin=" << to_string(pin_policy)
     << " split=" << to_string(split_distribution)
     << " sleep_on_full=" << (sleep_on_full ? "yes" : "no") << " sleep_us="
     << sleep_micros << " precombine=" << precombine_slots
     << " backoff=" << to_string(backoff);
  if (backoff == BackoffKind::kExponential) {
    os << " sleep_cap_us=" << sleep_cap_micros;
  }
  if (max_task_retries > 0) os << " task_retries=" << max_task_retries;
  if (deadline_ms > 0) os << " deadline_ms=" << deadline_ms;
  if (stall_timeout_ms > 0) os << " stall_ms=" << stall_timeout_ms;
  if (!fault_spec.empty()) os << " faults=" << fault_spec;
  if (telemetry) {
    os << " telemetry=on pmu=" << pmu_mode;
    if (sample_interval_us > 0) os << " sample_us=" << sample_interval_us;
  }
  if (adapt_mode != AdaptMode::kOff) {
    os << " adapt=" << to_string(adapt_mode);
  }
  // Memory knobs appear only when non-default, keeping default output
  // byte-stable (same contract as the adapt/telemetry sections).
  if (mem_mode != MemMode::kOff) os << " mem=" << to_string(mem_mode);
  if (emit_batch > 0) os << " emit_batch=" << emit_batch;
  if (service_mode) {
    os << " service=on service_jobs=" << service_max_jobs
       << " service_queue=" << service_queue_depth;
  }
  // Resilience knobs print only when enabled (all default off).
  if (service_max_retries > 0) os << " service_retries=" << service_max_retries;
  if (service_hedge_factor > 0.0) os << " hedge_factor=" << service_hedge_factor;
  if (service_breaker_k > 0) os << " breaker_k=" << service_breaker_k;
  if (service_shed_watermark > 0) {
    os << " shed_watermark=" << service_shed_watermark;
  }
  // Observability plane, printed only when armed (same byte-stability
  // contract as every section above).
  if (observability) {
    os << " obs=on flight_events=" << flight_events;
    if (!metrics_path.empty()) os << " metrics_path=" << metrics_path;
  }
  return os.str();
}

}  // namespace ramr
