#include "common/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <sched.h>
#include <unistd.h>
#endif

namespace ramr::affinity {

bool supported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

bool pin_current_thread(std::size_t cpu) {
  return pin_current_thread(std::vector<std::size_t>{cpu});
}

bool pin_current_thread(const std::vector<std::size_t>& cpus) {
#if defined(__linux__)
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (std::size_t cpu : cpus) {
    if (cpu < CPU_SETSIZE) {
      CPU_SET(cpu, &set);
      any = true;
    }
  }
  if (!any) return false;
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpus;
  return false;
#endif
}

std::optional<std::size_t> current_cpu() {
#if defined(__linux__)
  const int cpu = sched_getcpu();
  if (cpu < 0) return std::nullopt;
  return static_cast<std::size_t>(cpu);
#else
  return std::nullopt;
#endif
}

std::size_t usable_cpu_count() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<std::size_t>(n);
  }
#endif
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace ramr::affinity
