#include "common/timing.hpp"

#include <sstream>

namespace ramr {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kSplit:
      return "split";
    case Phase::kMapCombine:
      return "map-combine";
    case Phase::kReduce:
      return "reduce";
    case Phase::kMerge:
      return "merge";
  }
  return "?";
}

std::string PhaseTimers::summary() const {
  std::ostringstream os;
  os.precision(4);
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto phase = static_cast<Phase>(i);
    if (i != 0) os << ' ';
    os << phase_name(phase) << '=' << seconds(phase) << 's';
  }
  return os.str();
}

}  // namespace ramr
