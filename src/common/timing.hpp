// Wall-clock timing helpers and the per-phase timer used to produce the
// paper's Fig. 1 run-time breakdown (split / map-combine / reduce / merge).
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <string>

namespace ramr {

using Clock = std::chrono::steady_clock;
using Duration = std::chrono::duration<double>;  // seconds

inline Clock::time_point now() { return Clock::now(); }

inline double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<Duration>(b - a).count();
}

// A stopwatch that accumulates across start/stop cycles.
class Stopwatch {
 public:
  void start() { start_ = now(); running_ = true; }
  void stop() {
    if (running_) {
      total_ += seconds_between(start_, now());
      running_ = false;
    }
  }
  void reset() { total_ = 0.0; running_ = false; }
  double seconds() const {
    return running_ ? total_ + seconds_between(start_, now()) : total_;
  }

 private:
  Clock::time_point start_{};
  double total_ = 0.0;
  bool running_ = false;
};

// The MapReduce phases both runtimes instrument. RAMR fuses map and combine
// into one overlapped phase, so both runtimes account the pair as a single
// kMapCombine entry (matching the paper's Fig. 1 categories).
enum class Phase : std::size_t {
  kSplit = 0,
  kMapCombine = 1,
  kReduce = 2,
  kMerge = 3,
};
inline constexpr std::size_t kPhaseCount = 4;

const char* phase_name(Phase phase);

// Accumulated seconds per phase for one runtime invocation.
class PhaseTimers {
 public:
  void add(Phase phase, double seconds) {
    seconds_[static_cast<std::size_t>(phase)] += seconds;
  }
  double seconds(Phase phase) const {
    return seconds_[static_cast<std::size_t>(phase)];
  }
  double total() const {
    double t = 0.0;
    for (double s : seconds_) t += s;
    return t;
  }
  // Phase share in [0,1]; 0 when no time was recorded at all.
  double fraction(Phase phase) const {
    const double t = total();
    return t > 0.0 ? seconds(phase) / t : 0.0;
  }
  void reset() { seconds_.fill(0.0); }

  std::string summary() const;

 private:
  std::array<double, kPhaseCount> seconds_{};
};

// RAII helper: times a scope into a PhaseTimers entry.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimers& timers, Phase phase)
      : timers_(timers), phase_(phase), start_(now()) {}
  ~ScopedPhase() { timers_.add(phase_, seconds_between(start_, now())); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimers& timers_;
  Phase phase_;
  Clock::time_point start_;
};

}  // namespace ramr
