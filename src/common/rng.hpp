// Deterministic pseudo-random number generation for input generators and
// property tests. xoshiro256** seeded via splitmix64 — fast, high quality,
// and identical output on every platform (unlike std::default_random_engine).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace ramr {

// splitmix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**; satisfies UniformRandomBitGenerator so it composes with
// <random> distributions where needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) via Lemire's multiply-shift reduction
  // (bias is negligible for the bounds used by the generators).
  constexpr std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ramr
