#include "common/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"

namespace ramr::env {

namespace {

// Lower-cases ASCII in place; knob values like "TRUE"/"True" are accepted.
std::string to_lower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

}  // namespace

std::optional<std::string> get(const std::string& name) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  return std::string(raw);
}

std::int64_t get_int(const std::string& name, std::int64_t fallback) {
  auto raw = get(name);
  if (!raw) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(raw->c_str(), &end, 10);
  if (errno == ERANGE || end == raw->c_str() || *end != '\0') {
    throw ConfigError("env knob " + name + "='" + *raw +
                      "' is not a valid integer");
  }
  return static_cast<std::int64_t>(value);
}

std::uint64_t get_uint(const std::string& name, std::uint64_t fallback) {
  auto raw = get(name);
  if (!raw) return fallback;
  if (!raw->empty() && (*raw)[0] == '-') {
    throw ConfigError("env knob " + name + "='" + *raw +
                      "' must be non-negative");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw->c_str(), &end, 10);
  if (errno == ERANGE || end == raw->c_str() || *end != '\0') {
    throw ConfigError("env knob " + name + "='" + *raw +
                      "' is not a valid unsigned integer");
  }
  return static_cast<std::uint64_t>(value);
}

double get_double(const std::string& name, double fallback) {
  auto raw = get(name);
  if (!raw) return fallback;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(raw->c_str(), &end);
  if (errno == ERANGE || end == raw->c_str() || *end != '\0') {
    throw ConfigError("env knob " + name + "='" + *raw +
                      "' is not a valid number");
  }
  return value;
}

bool get_bool(const std::string& name, bool fallback) {
  auto raw = get(name);
  if (!raw) return fallback;
  const std::string v = to_lower(*raw);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw ConfigError("env knob " + name + "='" + *raw +
                    "' is not a valid boolean");
}

std::string get_string(const std::string& name, const std::string& fallback) {
  return get(name).value_or(fallback);
}

ScopedOverride::ScopedOverride(const std::string& name,
                               const std::string& value)
    : name_(name), previous_(get(name)) {
  ::setenv(name.c_str(), value.c_str(), /*overwrite=*/1);
}

ScopedOverride::~ScopedOverride() {
  if (previous_) {
    ::setenv(name_.c_str(), previous_->c_str(), 1);
  } else {
    ::unsetenv(name_.c_str());
  }
}

}  // namespace ramr::env
