#include "common/cpu.hpp"

namespace ramr::common {

namespace {

IsaLevel probe_isa_uncached() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return IsaLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return IsaLevel::kSse2;
#endif
  return IsaLevel::kScalar;
}

}  // namespace

IsaLevel probe_isa() {
  static const IsaLevel level = probe_isa_uncached();
  return level;
}

std::string to_string(IsaLevel level) {
  switch (level) {
    case IsaLevel::kSse2:
      return "sse2";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kScalar:
    default:
      return "scalar";
  }
}

}  // namespace ramr::common
