// Runtime configuration: every tuning knob the paper exposes, with the
// defaults reported in the paper and env-variable overrides.
//
// Paper Sec. III-A: queue capacity of five thousand elements is within 2% of
// optimal across all test-cases; Sec. IV-C: a batch size of ~1000 elements is
// best on Haswell (20-500 on Xeon Phi); Sec. III: task size is tunable via
// environment variables; Sec. III-B: the mapper:combiner ratio is application
// dependent.
#pragma once

#include <cstddef>
#include <string>

namespace ramr {

// Thread-to-CPU placement policies evaluated in the paper (Sec. IV-B).
enum class PinPolicy {
  kRamrPaired,  // communication-aware: combiner adjacent to its mappers
  kRoundRobin,  // pin thread i to logical cpu i (role-oblivious)
  kOsDefault,   // no pinning; the OS scheduler may migrate threads
};

// Parse/print helpers; parse throws ConfigError on unknown names.
PinPolicy parse_pin_policy(const std::string& name);
std::string to_string(PinPolicy policy);

// How map tasks are dealt across the per-locality-group queues.
enum class SplitDistribution {
  kRoundRobin,  // interleave tasks across groups (best load balance)
  kBlocked,     // one contiguous block per group (best NUMA locality)
};

SplitDistribution parse_split_distribution(const std::string& name);
std::string to_string(SplitDistribution distribution);

// Producer/consumer backoff policy for the pipelined strategy (Sec. III-A
// evaluates sleep vs busy-wait; the exponential capped ladder is an
// extension for long combiner outages).
enum class BackoffKind {
  kBusyWait,     // spin (with periodic yield); never sleeps
  kSleep,        // fixed-period sleep after a short spin (paper default)
  kExponential,  // sleep doubling from sleep_micros up to sleep_cap_micros
};

BackoffKind parse_backoff_kind(const std::string& name);
std::string to_string(BackoffKind kind);

// Adaptive-controller mode (src/adapt/): off = static knobs only (the
// historical behaviour), probe = calibrate a plan on a bounded input slice
// (and cache it) but leave the steady state alone, full = probe + the
// steady-state governor that retunes batch size / backoff cap online.
enum class AdaptMode {
  kOff,
  kProbe,
  kFull,
};

AdaptMode parse_adapt_mode(const std::string& name);
std::string to_string(AdaptMode mode);

// Memory-subsystem mode (src/mem/): off = every allocation goes to the
// default heap exactly as before (zero code run; one pointer check per
// site), arena = per-thread bump arenas + huge-page-backed ring storage,
// numa = arena + node-local placement (first-touch prefault by each ring's
// consumer, mbind of arenas/rings to the owner's node when available).
enum class MemMode {
  kOff,
  kArena,
  kNuma,
};

MemMode parse_mem_mode(const std::string& name);
std::string to_string(MemMode mode);

// Env-knob names (all optional; see RuntimeConfig::from_env).
inline constexpr const char* kEnvMappers = "RAMR_MAPPERS";
inline constexpr const char* kEnvCombiners = "RAMR_COMBINERS";
inline constexpr const char* kEnvRatio = "RAMR_RATIO";
inline constexpr const char* kEnvTaskSize = "RAMR_TASK_SIZE";
inline constexpr const char* kEnvQueueCapacity = "RAMR_QUEUE_CAPACITY";
inline constexpr const char* kEnvBatchSize = "RAMR_BATCH_SIZE";
inline constexpr const char* kEnvPinPolicy = "RAMR_PIN_POLICY";
inline constexpr const char* kEnvSleepOnFull = "RAMR_SLEEP_ON_FULL";
inline constexpr const char* kEnvSleepMicros = "RAMR_SLEEP_US";
inline constexpr const char* kEnvSplitDistribution =
    "RAMR_SPLIT_DISTRIBUTION";
inline constexpr const char* kEnvPrecombine = "RAMR_PRECOMBINE";
inline constexpr const char* kEnvBackoff = "RAMR_BACKOFF";
inline constexpr const char* kEnvSleepCapMicros = "RAMR_SLEEP_CAP_US";
inline constexpr const char* kEnvTaskRetries = "RAMR_TASK_RETRIES";
inline constexpr const char* kEnvDeadlineMs = "RAMR_DEADLINE_MS";
inline constexpr const char* kEnvStallMs = "RAMR_STALL_MS";
inline constexpr const char* kEnvFaults = "RAMR_FAULTS";
inline constexpr const char* kEnvTelemetry = "RAMR_TELEMETRY";
inline constexpr const char* kEnvPmu = "RAMR_PMU";
inline constexpr const char* kEnvSampleMicros = "RAMR_SAMPLE_US";
inline constexpr const char* kEnvAdapt = "RAMR_ADAPT";
inline constexpr const char* kEnvPlanCache = "RAMR_PLAN_CACHE";
inline constexpr const char* kEnvAdaptReport = "RAMR_ADAPT_REPORT";
inline constexpr const char* kEnvMem = "RAMR_MEM";
inline constexpr const char* kEnvEmitBatch = "RAMR_EMIT_BATCH";
inline constexpr const char* kEnvHugePages = "RAMR_HUGEPAGES";
inline constexpr const char* kEnvService = "RAMR_SERVICE";
inline constexpr const char* kEnvServiceJobs = "RAMR_SERVICE_JOBS";
inline constexpr const char* kEnvServiceQueue = "RAMR_SERVICE_QUEUE";
inline constexpr const char* kEnvServiceRetries = "RAMR_SERVICE_RETRIES";
inline constexpr const char* kEnvHedgeFactor = "RAMR_HEDGE_FACTOR";
inline constexpr const char* kEnvBreakerK = "RAMR_BREAKER_K";
inline constexpr const char* kEnvShedWatermark = "RAMR_SHED_WATERMARK";
inline constexpr const char* kEnvObs = "RAMR_OBS";
inline constexpr const char* kEnvMetricsPath = "RAMR_METRICS_PATH";
inline constexpr const char* kEnvFlightEvents = "RAMR_FLIGHT_EVENTS";
// Hot-path dispatch knobs. Like RAMR_HUGEPAGES, these are read at their
// point of use, not stored here: RAMR_SIMD=off|scalar|native by
// simd::active() (map-kernel table selection, src/simd/), and
// RAMR_ATOMIC_SHARDS by engine::resolve_atomic_shards (AtomicGlobal shard
// count, src/engine/strategy_atomic.hpp) — so both work identically under
// the dual-pool and the single-pool (mrphi) PoolSet shapes, which build
// their configs differently.
inline constexpr const char* kEnvSimd = "RAMR_SIMD";
inline constexpr const char* kEnvAtomicShards = "RAMR_ATOMIC_SHARDS";

// Which plan-relevant knobs were set explicitly via the environment.
// from_env() fills this so the adaptive controller can honour the
// precedence rule "explicit env > cache > probe > defaults": a knob the
// user pinned is never overridden by a cached or probed plan.
struct EnvOverrides {
  bool workers = false;  // RAMR_MAPPERS and/or RAMR_COMBINERS
  bool ratio = false;
  bool batch_size = false;
  bool queue_capacity = false;
  bool pin_policy = false;
  bool sleep_cap = false;
  bool emit_batch = false;

  // True when any knob an execution plan would decide is pinned by env.
  bool any_plan_knob() const {
    return workers || ratio || batch_size || queue_capacity || pin_policy;
  }
};

struct RuntimeConfig {
  // Worker counts. 0 means "derive from the machine": mappers default to the
  // number of hardware threads divided by (1 + 1/ratio) rounded so that
  // mappers + combiners fills the machine; combiners = mappers / ratio.
  std::size_t num_mappers = 0;
  std::size_t num_combiners = 0;

  // Mapper:combiner ratio used when worker counts are derived (Sec. III-B:
  // "driven by the throughput of the map and combine functions").
  std::size_t mapper_combiner_ratio = 2;

  // Number of input splits per scheduled task (Sec. III: large task sizes
  // hurt load balancing, small ones add library overhead).
  std::size_t task_size = 4;

  // SPSC queue capacity in elements (Sec. III-A: 5000 is within 2% of
  // optimal across all test-cases).
  std::size_t queue_capacity = 5000;

  // Elements consumed contiguously per combiner pop (Sec. IV-C).
  std::size_t batch_size = 256;

  PinPolicy pin_policy = PinPolicy::kRamrPaired;

  // Task dealing across locality groups (Sec. III: "map tasks are added in
  // the task queues — one for each locality group").
  SplitDistribution split_distribution = SplitDistribution::kRoundRobin;

  // Sleep-on-failed-push (Sec. III-A). When false, mappers busy-wait on a
  // full queue.
  bool sleep_on_full = true;
  std::size_t sleep_micros = 50;

  // Mapper-side pre-combining buffer, in slots (0 = off, the paper's
  // published behaviour). Coalesces same-key emissions before they enter
  // the SPSC ring — an extension targeting the queue-traffic-bound apps.
  std::size_t precombine_slots = 0;

  // Producer-side emit batch, in records (0 = off, the historical
  // element-wise push). Mappers buffer up to this many records and publish
  // them through Ring::try_push_batch — one release store and at most one
  // cached-head refresh per block instead of per element. The buffer
  // flushes on full, at task boundaries, and before close/cancel. The
  // steady-state governor may retune it when not pinned via env.
  std::size_t emit_batch = 0;

  // Backoff policy (applies when sleep_on_full is true; sleep_on_full=false
  // forces kBusyWait in resolved() for backwards compatibility). The
  // exponential ladder starts at sleep_micros and doubles per consecutive
  // sleep, capped at sleep_cap_micros.
  BackoffKind backoff = BackoffKind::kSleep;
  std::size_t sleep_cap_micros = 1000;

  // ---- robustness knobs (see src/faults/, engine/health.hpp) -------------

  // Map tasks failing with a TransientError are retried up to this many
  // times before the failure aborts the run (0 = no retry; the retry and
  // abort counts are reported in RunResult).
  std::size_t max_task_retries = 0;

  // Whole-run wall-clock deadline in milliseconds (0 = none). When
  // exceeded, the run is cancelled cooperatively and run() throws an
  // AbortError naming the phase.
  std::size_t deadline_ms = 0;

  // Per-worker stall bound in milliseconds (0 = none): an active worker
  // whose heartbeat does not advance for this long trips the watchdog.
  // Must exceed the longest single map task the app can execute.
  std::size_t stall_timeout_ms = 0;

  // Fault-injection spec (see faults::FaultPlan::parse; "" = disabled,
  // zero-cost). Test/chaos-only knob.
  std::string fault_spec;

  // ---- observability knobs (see src/telemetry/, docs/OBSERVABILITY.md) ---

  // Master switch for the telemetry subsystem (metric registry, PMU phase
  // counters, sampler, exporters). Off = zero cost: the engine carries a
  // null session pointer and each instrumentation site is one check.
  bool telemetry = false;

  // PMU backend mode, validated by telemetry::parse_pmu_mode at session
  // creation: "auto" (hardware counters when available, analytic model
  // otherwise), "on" (same, but explicitly requested), "off" (always model).
  std::string pmu_mode = "auto";

  // Sampler cadence in microseconds (0 = no sampler thread). Snapshots ring
  // occupancy and worker heartbeats into time-series during runs.
  std::size_t sample_interval_us = 0;

  // ---- adaptive-controller knobs (see src/adapt/, docs/TUNING.md) --------

  // RAMR_ADAPT=off|probe|full. Off keeps every existing code path
  // byte-identical; probe/full route core::Runtime::run through the
  // adapt::Controller.
  AdaptMode adapt_mode = AdaptMode::kOff;

  // Plan-cache file (RAMR_PLAN_CACHE). Empty = the default location,
  // $XDG_CACHE_HOME/ramr/plans.json or ~/.cache/ramr/plans.json.
  std::string plan_cache_path;

  // ---- memory-subsystem knobs (see src/mem/, docs/ARCHITECTURE.md §11) ---

  // RAMR_MEM=off|arena|numa. Off keeps every allocation on the default
  // heap, byte-identical behaviour; arena/numa build a mem::MemoryLayer in
  // the PoolSet (placed arenas + huge-page ring storage; numa adds
  // node-local binding and consumer-side first touch). RAMR_HUGEPAGES=0
  // additionally forces the huge-page advice off (fallback testing /
  // operator escape hatch); it is read by mem::hugepages_enabled, not
  // stored here.
  MemMode mem_mode = MemMode::kOff;

  // ---- service-mode knobs (see src/service/, ARCHITECTURE.md §12) --------

  // RAMR_SERVICE=1 keeps resolved pool sets resident in the process-wide
  // engine::PoolDepot, so consecutive Runtime instances (and run_once
  // calls) of the same shape lease warm pools — threads, pins, and arenas
  // survive across invocations — instead of re-spawning them. Off keeps
  // per-Runtime pools and byte-identical behaviour.
  bool service_mode = false;

  // service::Scheduler admission knobs (Scheduler::Options::from_env reads
  // them): the concurrent-job cap (0 = one job per socket) and the bound on
  // jobs waiting in the queue — a submit beyond it is rejected, not queued.
  std::size_t service_max_jobs = 0;
  std::size_t service_queue_depth = 16;

  // ---- service resilience knobs (see ARCHITECTURE.md §13) ----------------
  // All default off: the scheduler behaves exactly as before (one attempt
  // per job, no hedges, no breaker, no shedding) and default output is
  // byte-identical.

  // Job-level retry budget: a failed job re-enters admission (original
  // arrival order, exponential backoff + deterministic jitter) up to this
  // many times. A JobSpec can override it per job.
  std::size_t service_max_retries = 0;

  // Hedged execution: a running job whose elapsed time exceeds this factor
  // times its app's EWMA runtime gets a duplicate launched on spare cores;
  // the first finisher wins, the loser is cancelled. 0 = off.
  double service_hedge_factor = 0.0;

  // Per-app circuit breaker: after this many *consecutive* job failures of
  // one app, submissions for it fast-fail until the breaker half-opens on a
  // timer and a trial job closes it again. 0 = off.
  std::size_t service_breaker_k = 0;

  // Overload shedding: when the total queued admission cost exceeds this
  // high watermark, the scheduler sheds lowest-priority queued jobs
  // (JobStatus::kShed) until the cost falls to the low watermark
  // (watermark / 2). 0 = off (only the queue-depth bound applies).
  std::size_t service_shed_watermark = 0;

  // ---- service observability knobs (docs/OBSERVABILITY.md) ---------------
  // All default off: with RAMR_OBS unset the scheduler records nothing, the
  // engine's skew-profiler sites are one pointer check, and default output
  // is byte-identical.

  // RAMR_OBS=1 arms the observability plane: job lifecycle tracing into a
  // telemetry::ServiceTrace (stitched Chrome/Perfetto trace), the flight
  // recorder, the low-cadence service metrics sampler, and the per-run
  // straggler/skew profiler (imbalance scores + sampled hot keys in
  // RunResult::skew).
  bool observability = false;

  // RAMR_METRICS_PATH: when set (and RAMR_OBS=1), the scheduler's sampler
  // periodically rewrites a ramr-metrics-v1 JSON snapshot at this path.
  // Empty = no periodic file; Scheduler::metrics_text() still works.
  std::string metrics_path;

  // RAMR_FLIGHT_EVENTS: capacity of the flight recorder's bounded ring of
  // recent lifecycle events (older events are dropped, counted).
  std::size_t flight_events = 256;

  // Filled by from_env(); defaults mean "nothing pinned".
  EnvOverrides env_overrides;

  // Build a config taking every RAMR_* env knob into account, starting from
  // the given base (defaults if omitted). Throws ConfigError on bad values.
  static RuntimeConfig from_env(RuntimeConfig base);
  static RuntimeConfig from_env() { return from_env(RuntimeConfig{}); }

  // Resolve derived fields against a machine with `hardware_threads` logical
  // CPUs: fills num_mappers/num_combiners if zero, clamps the ratio, and
  // validates invariants (at least one mapper and one combiner, batch not
  // larger than queue capacity). Throws ConfigError on impossible requests.
  RuntimeConfig resolved(std::size_t hardware_threads) const;

  // Human-readable one-line summary (for bench logs).
  std::string summary() const;
};

}  // namespace ramr
