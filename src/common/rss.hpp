// Process-wide peak resident set size, for the memory high-water line in
// RunResult / the run report. One getrusage syscall; stamped at the end of
// every run so the streaming-IO flat-memory claim is checkable from
// artifacts even when RAMR_MEM is off.
#pragma once

#include <cstddef>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace ramr::common {

// Peak RSS in bytes, 0 where unsupported. Note the value is monotonic over
// a process lifetime (the kernel never lowers ru_maxrss), so cross-run
// comparisons are only meaningful from fresh processes.
inline std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace ramr::common
