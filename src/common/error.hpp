// Error type used across the library.
//
// RAMR uses exceptions only for configuration/usage errors (bad env knob,
// impossible pinning request, container over-capacity). Hot paths never
// throw; queue and container fast paths report via return values.
#pragma once

#include <stdexcept>
#include <string>

namespace ramr {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Thrown when an environment knob holds an unparsable or out-of-range value.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

// Thrown when a fixed-capacity structure is asked to exceed its capacity
// (e.g. a FixedHashContainer that ran out of slots).
class CapacityError : public Error {
 public:
  explicit CapacityError(const std::string& what) : Error(what) {}
};

// Classification base for failures that may succeed on a retry (the engine
// retries map tasks that fail with a TransientError up to the configured
// limit; any other exception aborts the run). Apps may derive from this to
// opt their own recoverable failures into task-level retry.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

}  // namespace ramr
