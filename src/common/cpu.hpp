// Runtime CPU capability probe for the SIMD dispatch layer (src/simd/).
//
// One question is asked of the hardware: which vector ISA tier can this
// process execute? The answer is probed once (cpuid via the compiler's
// builtin, so no inline asm) and drives simd::active()'s table selection.
// Non-x86 builds always report kScalar — the portable tables still work,
// only the wide paths are skipped.
#pragma once

#include <string>

namespace ramr::common {

// Vector ISA tiers the kernel tables are built for, in ascending width.
// kSse2 is the x86-64 baseline (every 64-bit part has it); kAvx2 covers
// Haswell onward — the paper's host platform.
enum class IsaLevel {
  kScalar,
  kSse2,
  kAvx2,
};

// Probed once per process; subsequent calls return the cached answer.
IsaLevel probe_isa();

std::string to_string(IsaLevel level);

}  // namespace ramr::common
