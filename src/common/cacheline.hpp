// Cache-line geometry and padding helpers.
//
// The SPSC ring and the runtime's shared control blocks depend on keeping
// producer-side and consumer-side state on distinct cache lines; this header
// centralises the line-size constant and a generic padded wrapper.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ramr {

// Size, in bytes, of the destructive-interference granule. A fixed 64 is
// correct for every x86 part the paper targets (Haswell, KNC) and, unlike
// std::hardware_destructive_interference_size, is stable across translation
// units compiled with different tuning flags (GCC warns about exactly that).
inline constexpr std::size_t kCacheLineSize = 64;

// A value of T alone on its own cache line(s). Used for atomics that are
// written by one thread and read by another, so that unrelated writers never
// invalidate the line.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  static_assert(!std::is_reference_v<T>);

  constexpr CacheAligned() = default;

  template <typename... Args>
  explicit constexpr CacheAligned(Args&&... args)
      : value(std::forward<Args>(args)...) {}

  T value{};

  // Trailing pad so that placing CacheAligned objects contiguously (e.g. in
  // an array of per-thread slots) still yields one line per slot even when
  // sizeof(T) < kCacheLineSize and the compiler would otherwise pack tails.
  char pad_[kCacheLineSize > sizeof(T)
                ? kCacheLineSize - (sizeof(T) % kCacheLineSize)
                : kCacheLineSize]{};
};

}  // namespace ramr
