// 128-bit kernel table. SSE2 is the x86-64 baseline, so this TU compiles
// with the project's default flags — no target attribute needed — and is
// simply absent (nullptr table) on other architectures.
//
// The separator class test vectorizes as signed-byte compares:
// sep(c) = (c == ' ') | (c > 8 & c < 14). Bytes >= 0x80 are negative under
// signed compare, so they fall out of the 9..13 window correctly.
#include "simd/kernels.hpp"
#include "simd/kernels_detail.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace ramr::simd {
namespace {

inline int separator_mask(__m128i v) {
  const __m128i space = _mm_set1_epi8(' ');
  const __m128i lo = _mm_set1_epi8(8);
  const __m128i hi = _mm_set1_epi8(14);
  const __m128i ws =
      _mm_and_si128(_mm_cmpgt_epi8(v, lo), _mm_cmpgt_epi8(hi, v));
  return _mm_movemask_epi8(_mm_or_si128(_mm_cmpeq_epi8(v, space), ws));
}

std::size_t find_separator_sse2(const char* data, std::size_t pos,
                                std::size_t end) {
  while (pos + 16 <= end) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
    const int m = separator_mask(v);
    if (m != 0) {
      return pos + static_cast<std::size_t>(__builtin_ctz(
                       static_cast<unsigned>(m)));
    }
    pos += 16;
  }
  return detail::find_separator_scalar(data, pos, end);
}

std::size_t skip_separators_sse2(const char* data, std::size_t pos,
                                 std::size_t end) {
  while (pos + 16 <= end) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
    const unsigned m = ~static_cast<unsigned>(separator_mask(v)) & 0xFFFFu;
    if (m != 0) return pos + static_cast<std::size_t>(__builtin_ctz(m));
    pos += 16;
  }
  return detail::skip_separators_scalar(data, pos, end);
}

std::size_t find_byte_sse2(const char* data, std::size_t pos, std::size_t end,
                           char b) {
  const __m128i needle = _mm_set1_epi8(b);
  while (pos + 16 <= end) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
    const int m = _mm_movemask_epi8(_mm_cmpeq_epi8(v, needle));
    if (m != 0) {
      return pos + static_cast<std::size_t>(__builtin_ctz(
                       static_cast<unsigned>(m)));
    }
    pos += 16;
  }
  return detail::find_byte_scalar(data, pos, end, b);
}

bool range_equal_sse2(const char* a, const char* b, std::size_t n) {
  std::size_t i = 0;
  while (i + 16 <= n) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) != 0xFFFF) return false;
    i += 16;
  }
  return detail::range_equal_scalar(a + i, b + i, n - i);
}

// Two 2-lane accumulators standing in for scalar lanes {0,1} and {2,3}:
// lane j of the deterministic stride-4 schedule receives exactly the
// elements j, j+4, j+8, ... in order, so the result is bit-identical to
// the scalar table.
double sum_f64_sse2(const double* a, std::size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = _mm_add_pd(acc01, _mm_loadu_pd(a + i));
    acc23 = _mm_add_pd(acc23, _mm_loadu_pd(a + i + 2));
  }
  double s[4];
  _mm_storeu_pd(s + 0, acc01);
  _mm_storeu_pd(s + 2, acc23);
  for (; i < n; ++i) s[i & 3] += a[i];
  return (s[0] + s[2]) + (s[1] + s[3]);
}

double dot_centered_f64_sse2(const double* a, const double* b, double ma,
                             double mb, std::size_t n) {
  const __m128d vma = _mm_set1_pd(ma);
  const __m128d vmb = _mm_set1_pd(mb);
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Explicit mul-then-add (no FMA contraction) keeps every table on the
    // same rounding sequence.
    const __m128d p01 = _mm_mul_pd(_mm_sub_pd(_mm_loadu_pd(a + i), vma),
                                   _mm_sub_pd(_mm_loadu_pd(b + i), vmb));
    const __m128d p23 = _mm_mul_pd(_mm_sub_pd(_mm_loadu_pd(a + i + 2), vma),
                                   _mm_sub_pd(_mm_loadu_pd(b + i + 2), vmb));
    acc01 = _mm_add_pd(acc01, p01);
    acc23 = _mm_add_pd(acc23, p23);
  }
  double s[4];
  _mm_storeu_pd(s + 0, acc01);
  _mm_storeu_pd(s + 2, acc23);
  for (; i < n; ++i) {
    const double term = (a[i] - ma) * (b[i] - mb);
    s[i & 3] += term;
  }
  return (s[0] + s[2]) + (s[1] + s[3]);
}

}  // namespace

const Kernels* sse2_kernels() {
  static constexpr Kernels table = {
      find_separator_sse2,
      skip_separators_sse2,
      find_byte_sse2,
      range_equal_sse2,
      // Binning is store-bound: the win is breaking the store-forward
      // chain, which the per-lane partial tables do without vector loads.
      detail::histogram_channels_unrolled,
      // No cheap 16->64 widening multiply on SSE2; the scalar moment loop
      // already saturates the two multiply ports.
      detail::lr_moments_scalar,
      sum_f64_sse2,
      dot_centered_f64_sse2,
  };
  return &table;
}

}  // namespace ramr::simd

#else  // !__SSE2__

namespace ramr::simd {
const Kernels* sse2_kernels() { return nullptr; }
}  // namespace ramr::simd

#endif
