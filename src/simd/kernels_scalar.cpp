// Portable scalar kernel table — the parity baseline every vector table
// must match bit-for-bit, and the always-available fallback on CPUs (or
// builds) without a vector tier.
#include <cstring>

#include "simd/kernels.hpp"
#include "simd/kernels_detail.hpp"

namespace ramr::simd {

namespace detail {

std::size_t find_separator_scalar(const char* data, std::size_t pos,
                                  std::size_t end) {
  while (pos < end && !is_word_separator(data[pos])) ++pos;
  return pos;
}

std::size_t skip_separators_scalar(const char* data, std::size_t pos,
                                   std::size_t end) {
  while (pos < end && is_word_separator(data[pos])) ++pos;
  return pos;
}

std::size_t find_byte_scalar(const char* data, std::size_t pos,
                             std::size_t end, char b) {
  while (pos < end && data[pos] != b) ++pos;
  return pos;
}

bool range_equal_scalar(const char* a, const char* b, std::size_t n) {
  return n == 0 || std::memcmp(a, b, n) == 0;
}

void histogram_channels_scalar(const std::uint8_t* data, std::size_t n,
                               std::size_t channel0, std::uint64_t* bins) {
  std::size_t ch = channel0 % 3;
  for (std::size_t i = 0; i < n; ++i) {
    bins[ch * 256 + data[i]] += 1;
    ch = ch == 2 ? 0 : ch + 1;
  }
}

void lr_moments_scalar(const std::int16_t* xy, std::size_t n,
                       std::int64_t out[5]) {
  std::int64_t sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t x = xy[2 * i];
    const std::int64_t y = xy[2 * i + 1];
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  out[0] += sx;
  out[1] += sy;
  out[2] += sxx;
  out[3] += syy;
  out[4] += sxy;
}

double sum_f64_scalar(const double* a, std::size_t n) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) s[i & 3] += a[i];
  return (s[0] + s[2]) + (s[1] + s[3]);
}

double dot_centered_f64_scalar(const double* a, const double* b, double ma,
                               double mb, std::size_t n) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    const double term = (a[i] - ma) * (b[i] - mb);
    s[i & 3] += term;
  }
  return (s[0] + s[2]) + (s[1] + s[3]);
}

void histogram_channels_unrolled(const std::uint8_t* data, std::size_t n,
                                 std::size_t channel0, std::uint64_t* bins) {
  // Four uint32 partial tables; each lane sees at most kBlock/4 increments
  // per block, far below the uint32 ceiling.
  constexpr std::size_t kBlock = std::size_t{1} << 30;
  std::size_t done = 0;
  while (done < n) {
    const std::size_t len = n - done < kBlock ? n - done : kBlock;
    const std::uint8_t* p = data + done;
    std::uint32_t part[4][768] = {};
    // Channel offset of lane j within a 12-byte group (lcm(3 channels,
    // 4 lanes)), fixed for the whole block because i advances by 12.
    std::size_t co[12];
    for (std::size_t j = 0; j < 12; ++j) {
      co[j] = ((channel0 + done + j) % 3) * 256;
    }
    std::size_t i = 0;
    for (; i + 12 <= len; i += 12) {
      part[0][co[0] + p[i + 0]] += 1;
      part[1][co[1] + p[i + 1]] += 1;
      part[2][co[2] + p[i + 2]] += 1;
      part[3][co[3] + p[i + 3]] += 1;
      part[0][co[4] + p[i + 4]] += 1;
      part[1][co[5] + p[i + 5]] += 1;
      part[2][co[6] + p[i + 6]] += 1;
      part[3][co[7] + p[i + 7]] += 1;
      part[0][co[8] + p[i + 8]] += 1;
      part[1][co[9] + p[i + 9]] += 1;
      part[2][co[10] + p[i + 10]] += 1;
      part[3][co[11] + p[i + 11]] += 1;
    }
    for (; i < len; ++i) {
      part[i & 3][((channel0 + done + i) % 3) * 256 + p[i]] += 1;
    }
    for (std::size_t k = 0; k < 768; ++k) {
      const std::uint64_t sum = std::uint64_t{part[0][k]} + part[1][k] +
                                part[2][k] + part[3][k];
      if (sum != 0) bins[k] += sum;
    }
    done += len;
  }
}

}  // namespace detail

const Kernels& scalar_kernels() {
  static constexpr Kernels table = {
      detail::find_separator_scalar, detail::skip_separators_scalar,
      detail::find_byte_scalar,      detail::range_equal_scalar,
      detail::histogram_channels_scalar, detail::lr_moments_scalar,
      detail::sum_f64_scalar,        detail::dot_centered_f64_scalar,
  };
  return table;
}

}  // namespace ramr::simd
