// 256-bit kernel table. This TU is compiled with -mavx2 when the toolchain
// supports it (see simd/CMakeLists.txt); when it is not, or on non-x86
// builds, the table is absent (nullptr) and dispatch stops at SSE2/scalar.
// Selection is strictly runtime-gated on the cpuid probe, so a binary built
// here still runs correctly on a pre-Haswell part.
#include "simd/kernels.hpp"
#include "simd/kernels_detail.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace ramr::simd {
namespace {

inline unsigned separator_mask(__m256i v) {
  const __m256i space = _mm256_set1_epi8(' ');
  const __m256i lo = _mm256_set1_epi8(8);
  const __m256i hi = _mm256_set1_epi8(14);
  const __m256i ws =
      _mm256_and_si256(_mm256_cmpgt_epi8(v, lo), _mm256_cmpgt_epi8(hi, v));
  return static_cast<unsigned>(_mm256_movemask_epi8(
      _mm256_or_si256(_mm256_cmpeq_epi8(v, space), ws)));
}

std::size_t find_separator_avx2(const char* data, std::size_t pos,
                                std::size_t end) {
  while (pos + 32 <= end) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + pos));
    const unsigned m = separator_mask(v);
    if (m != 0) return pos + static_cast<std::size_t>(__builtin_ctz(m));
    pos += 32;
  }
  return detail::find_separator_scalar(data, pos, end);
}

std::size_t skip_separators_avx2(const char* data, std::size_t pos,
                                 std::size_t end) {
  while (pos + 32 <= end) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + pos));
    const unsigned m = ~separator_mask(v);
    if (m != 0) return pos + static_cast<std::size_t>(__builtin_ctz(m));
    pos += 32;
  }
  return detail::skip_separators_scalar(data, pos, end);
}

std::size_t find_byte_avx2(const char* data, std::size_t pos, std::size_t end,
                           char b) {
  const __m256i needle = _mm256_set1_epi8(b);
  while (pos + 32 <= end) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + pos));
    const unsigned m = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, needle)));
    if (m != 0) return pos + static_cast<std::size_t>(__builtin_ctz(m));
    pos += 32;
  }
  return detail::find_byte_scalar(data, pos, end, b);
}

bool range_equal_avx2(const char* a, const char* b, std::size_t n) {
  std::size_t i = 0;
  while (i + 32 <= n) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const unsigned m = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (m != 0xFFFFFFFFu) return false;
    i += 32;
  }
  return detail::range_equal_scalar(a + i, b + i, n - i);
}

// Widen 8 int32 lanes to int64 and fold them into a 4-lane accumulator.
inline __m256i accumulate_i64(__m256i acc, __m256i v32) {
  const __m256i lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v32));
  const __m256i hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v32, 1));
  return _mm256_add_epi64(acc, _mm256_add_epi64(lo, hi));
}

inline std::int64_t reduce_i64(__m256i acc) {
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

// Eight (x, y) int16 pairs per 256-bit load. x is recovered by a
// shift-left/arithmetic-shift-right pair, y by an arithmetic shift alone;
// every product of two int16 values fits int32 (|x| <= 32767, so
// x*x <= 2^30), so mullo_epi32 is exact and the widening add keeps the
// int64 running sums exact — bit-identical to the scalar table.
void lr_moments_avx2(const std::int16_t* xy, std::size_t n,
                     std::int64_t out[5]) {
  __m256i sx = _mm256_setzero_si256();
  __m256i sy = _mm256_setzero_si256();
  __m256i sxx = _mm256_setzero_si256();
  __m256i syy = _mm256_setzero_si256();
  __m256i sxy = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(xy + 2 * i));
    const __m256i x = _mm256_srai_epi32(_mm256_slli_epi32(v, 16), 16);
    const __m256i y = _mm256_srai_epi32(v, 16);
    sx = accumulate_i64(sx, x);
    sy = accumulate_i64(sy, y);
    sxx = accumulate_i64(sxx, _mm256_mullo_epi32(x, x));
    syy = accumulate_i64(syy, _mm256_mullo_epi32(y, y));
    sxy = accumulate_i64(sxy, _mm256_mullo_epi32(x, y));
  }
  std::int64_t tsx = reduce_i64(sx);
  std::int64_t tsy = reduce_i64(sy);
  std::int64_t tsxx = reduce_i64(sxx);
  std::int64_t tsyy = reduce_i64(syy);
  std::int64_t tsxy = reduce_i64(sxy);
  for (; i < n; ++i) {
    const std::int64_t x = xy[2 * i];
    const std::int64_t y = xy[2 * i + 1];
    tsx += x;
    tsy += y;
    tsxx += x * x;
    tsyy += y * y;
    tsxy += x * y;
  }
  out[0] += tsx;
  out[1] += tsy;
  out[2] += tsxx;
  out[3] += tsyy;
  out[4] += tsxy;
}

// One 4-lane accumulator IS the scalar stride-4 schedule: lane j receives
// elements j, j+4, j+8, ... in order, and the tail spills the lanes and
// continues scalar-wise, so the result is bit-identical to the scalar
// table.
double sum_f64_avx2(const double* a, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(a + i));
  }
  double s[4];
  _mm256_storeu_pd(s, acc);
  for (; i < n; ++i) s[i & 3] += a[i];
  return (s[0] + s[2]) + (s[1] + s[3]);
}

double dot_centered_f64_avx2(const double* a, const double* b, double ma,
                             double mb, std::size_t n) {
  const __m256d vma = _mm256_set1_pd(ma);
  const __m256d vmb = _mm256_set1_pd(mb);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Explicit mul-then-add, NOT _mm256_fmadd_pd: -mavx2 does not imply
    // FMA, and the contraction would change rounding vs the scalar table.
    const __m256d p = _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(a + i), vma),
                                    _mm256_sub_pd(_mm256_loadu_pd(b + i), vmb));
    acc = _mm256_add_pd(acc, p);
  }
  double s[4];
  _mm256_storeu_pd(s, acc);
  for (; i < n; ++i) {
    const double term = (a[i] - ma) * (b[i] - mb);
    s[i & 3] += term;
  }
  return (s[0] + s[2]) + (s[1] + s[3]);
}

}  // namespace

const Kernels* avx2_kernels() {
  static constexpr Kernels table = {
      find_separator_avx2,
      skip_separators_avx2,
      find_byte_avx2,
      range_equal_avx2,
      detail::histogram_channels_unrolled,
      lr_moments_avx2,
      sum_f64_avx2,
      dot_centered_f64_avx2,
  };
  return &table;
}

}  // namespace ramr::simd

#else  // !__AVX2__

namespace ramr::simd {
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace ramr::simd

#endif
