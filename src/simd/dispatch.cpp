// RAMR_SIMD parsing and the process-wide kernel-table decision.
#include "simd/kernels.hpp"

#include "common/config.hpp"
#include "common/env.hpp"
#include "common/error.hpp"

namespace ramr::simd {

Mode parse_simd_mode(const std::string& name) {
  if (name == "off") return Mode::kOff;
  if (name == "scalar") return Mode::kScalar;
  if (name == "native") return Mode::kNative;
  throw ConfigError(std::string(kEnvSimd) + ": unknown mode '" + name +
                    "' (expected off|scalar|native)");
}

std::string to_string(Mode mode) {
  switch (mode) {
    case Mode::kScalar:
      return "scalar";
    case Mode::kNative:
      return "native";
    case Mode::kOff:
    default:
      return "off";
  }
}

Active resolve(Mode mode) {
  Active a;
  a.mode = mode;
  a.isa = common::probe_isa();
  if (mode == Mode::kOff) {
    a.path = "off";
    a.kernels = nullptr;
    return a;
  }
  a.path = "scalar";
  a.kernels = &scalar_kernels();
  if (mode == Mode::kNative) {
    // Widest tier first; a tier is taken only when the cpuid probe allows
    // it AND the build produced its table.
    if (a.isa == common::IsaLevel::kAvx2) {
      if (const Kernels* k = avx2_kernels()) {
        a.kernels = k;
        a.path = "avx2";
        return a;
      }
    }
    if (a.isa == common::IsaLevel::kAvx2 || a.isa == common::IsaLevel::kSse2) {
      if (const Kernels* k = sse2_kernels()) {
        a.kernels = k;
        a.path = "sse2";
      }
    }
  }
  return a;
}

namespace {

Active resolve_from_env() {
  return resolve(parse_simd_mode(env::get_string(kEnvSimd, "off")));
}

Active& cached() {
  static Active a = resolve_from_env();
  return a;
}

}  // namespace

const Active& active() { return cached(); }

void refresh_from_env() { cached() = resolve_from_env(); }

}  // namespace ramr::simd
