// Portable SIMD map kernels with runtime capability dispatch (RAMR_SIMD).
//
// The map-side inner loops of the text/byte suite apps reduce to a handful
// of primitives: separator scans over the whitespace class, first-byte
// pattern probes, byte-bucket accumulation, and fixed-moment reductions.
// This layer implements each primitive three times — portable scalar, SSE2
// (128-bit, the x86-64 baseline) and AVX2 (256-bit, Haswell onward) — and
// selects a table at runtime from the probed ISA (common/cpu.hpp) and the
// RAMR_SIMD knob:
//
//   RAMR_SIMD unset / "off"  — apps run their historical inline loops;
//                              zero code from this layer executes and
//                              default output stays byte-identical.
//   RAMR_SIMD=scalar         — apps call through the kernel table, pinned
//                              to the portable scalar implementations
//                              (forced-fallback testing; also the parity
//                              baseline the vector tables must match).
//   RAMR_SIMD=native         — widest table the CPU supports (avx2 → sse2
//                              → scalar).
//
// Determinism contract: for every kernel and every input, all three tables
// return bit-identical results. The integer kernels are order-independent
// sums, and the f64 kernels fix one accumulation schedule — four
// interleaved partial sums combined as (s0+s2)+(s1+s3) — that scalar, SSE2
// and AVX2 all execute exactly, so `scalar` and `native` runs agree to the
// last bit. (The `off` inline loops keep the historical single-accumulator
// order instead; see the parity tests for the tolerance story.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/cpu.hpp"

namespace ramr::simd {

// The separator class the text kernels scan for: ' ' plus the C whitespace
// escapes \t \n \v \f \r (bytes 9..13). Matches what load_text_file and
// stream_classify fold to ' ' at normalization time, so slurped, streamed
// and raw-constructed inputs all tokenize identically.
constexpr bool is_word_separator(char c) {
  const unsigned char u = static_cast<unsigned char>(c);
  return c == ' ' || (u >= 9 && u <= 13);
}

enum class Mode {
  kOff,     // historical inline loops; this layer is dormant
  kScalar,  // kernel table, portable scalar entries
  kNative,  // kernel table, widest entries the CPU supports
};

// Parse the RAMR_SIMD value; throws ramr::ConfigError naming the variable
// on anything but off|scalar|native.
Mode parse_simd_mode(const std::string& name);
std::string to_string(Mode mode);

// One resolved implementation set. Every entry is non-null in every table.
struct Kernels {
  // Returns the first index in [pos, end) holding a separator byte, or
  // `end` when there is none.
  std::size_t (*find_separator)(const char* data, std::size_t pos,
                                std::size_t end);

  // Returns the first index in [pos, end) holding a NON-separator byte, or
  // `end` when the whole range is separators.
  std::size_t (*skip_separators)(const char* data, std::size_t pos,
                                 std::size_t end);

  // Returns the first index in [pos, end) holding byte `b`, or `end`.
  std::size_t (*find_byte)(const char* data, std::size_t pos, std::size_t end,
                           char b);

  // memcmp-shaped equality over n bytes.
  bool (*range_equal)(const char* a, const char* b, std::size_t n);

  // Histogram binning: for each input byte data[i], increments
  // bins[((channel0 + i) % 3) * 256 + data[i]]. `bins` has 768 slots.
  // Gather-free: the wide tables accumulate into per-lane partial tables
  // (breaking the store-forward dependency chain) and merge at the end.
  void (*histogram_channels)(const std::uint8_t* data, std::size_t n,
                             std::size_t channel0, std::uint64_t* bins);

  // Linear-regression moment sums over n interleaved (x, y) int16 pairs:
  // out[0..4] += {Sx, Sy, Sxx, Syy, Sxy}. Integer sums — exact and
  // order-independent, so every table agrees bit-for-bit.
  void (*lr_moments)(const std::int16_t* xy, std::size_t n,
                     std::int64_t out[5]);

  // Four-partial-sum reduction of a[0..n): lane i%4 accumulates a[i], and
  // the result is (s0+s2)+(s1+s3). All tables execute this exact schedule.
  double (*sum_f64)(const double* a, std::size_t n);

  // Same schedule over the centered products (a[i]-ma)*(b[i]-mb) — the PCA
  // covariance inner loop. No FMA contraction on any path (the vector code
  // uses explicit mul+add), so scalar and native agree bit-for-bit.
  double (*dot_centered_f64)(const double* a, const double* b, double ma,
                             double mb, std::size_t n);
};

// The resolved dispatch decision for this process.
struct Active {
  Mode mode = Mode::kOff;
  common::IsaLevel isa = common::IsaLevel::kScalar;  // probed, always set
  const char* path = "off";  // "off" | "scalar" | "sse2" | "avx2"
  const Kernels* kernels = nullptr;  // non-null whenever mode != kOff
};

// Resolve a dispatch decision for an explicit mode (bench harness use).
Active resolve(Mode mode);

// The process-wide decision: parses RAMR_SIMD once (throwing ConfigError on
// a bad value) and caches the resolved table. Apps call this on every map
// task — it is one load after the first call.
const Active& active();

// Re-reads RAMR_SIMD and swaps the cached decision. Test-only (pairs with
// env::ScopedOverride); not thread-safe against concurrent active() calls,
// exactly like ScopedOverride itself.
void refresh_from_env();

// The individual tables, for parity tests and the kernel bench. sse2/avx2
// return nullptr when the build could not compile that tier.
const Kernels& scalar_kernels();
const Kernels* sse2_kernels();
const Kernels* avx2_kernels();

}  // namespace ramr::simd
