// Internal cross-table entry points. The vector tables reuse the portable
// implementations for kernels where wider registers buy nothing (histogram
// binning is store-bound; the LR moment loop on SSE2 lacks a cheap widening
// multiply), so those live here once instead of per TU.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ramr::simd::detail {

std::size_t find_separator_scalar(const char* data, std::size_t pos,
                                  std::size_t end);
std::size_t skip_separators_scalar(const char* data, std::size_t pos,
                                   std::size_t end);
std::size_t find_byte_scalar(const char* data, std::size_t pos,
                             std::size_t end, char b);
bool range_equal_scalar(const char* a, const char* b, std::size_t n);
void histogram_channels_scalar(const std::uint8_t* data, std::size_t n,
                               std::size_t channel0, std::uint64_t* bins);
void lr_moments_scalar(const std::int16_t* xy, std::size_t n,
                       std::int64_t out[5]);
double sum_f64_scalar(const double* a, std::size_t n);
double dot_centered_f64_scalar(const double* a, const double* b, double ma,
                               double mb, std::size_t n);

// Gather-free histogram used by the vector tables: four per-lane partial
// uint32 tables broken off the single store-forward chain, flushed into the
// caller's uint64 bins before any lane can overflow.
void histogram_channels_unrolled(const std::uint8_t* data, std::size_t n,
                                 std::size_t channel0, std::uint64_t* bins);

}  // namespace ramr::simd::detail
