// Thread-to-CPU placement plans (paper Sec. III-B, Fig. 3, evaluated
// Sec. IV-B / Fig. 5).
//
// A plan answers three questions for a (num_mappers, num_combiners) pair:
//   1. which mapper queues each combiner drains (same for every policy —
//      combiner j gets a contiguous block of mappers of size ~ratio);
//   2. which logical CPU each mapper thread is pinned to;
//   3. which logical CPU each combiner thread is pinned to.
// Under kOsDefault the CPU assignments are empty (threads run unpinned and
// the OS may migrate them).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "topology/topology.hpp"

namespace ramr::topo {

struct PinningPlan {
  PinPolicy policy = PinPolicy::kOsDefault;

  // mapper_of_combiner[j] = indices of the mappers whose queues combiner j
  // drains. Always populated; partitions [0, num_mappers).
  std::vector<std::vector<std::size_t>> mappers_of_combiner;

  // OS CPU ids; empty vectors under kOsDefault.
  std::vector<std::size_t> mapper_cpu;
  std::vector<std::size_t> combiner_cpu;

  std::size_t num_mappers() const;
  std::size_t num_combiners() const { return mappers_of_combiner.size(); }

  // Combiner draining mapper i (inverse of mappers_of_combiner).
  std::size_t combiner_of_mapper(std::size_t mapper) const;

  // Mean Distance between each mapper and its combiner — the quantity the
  // RAMR policy minimises; used by tests and the simulator's communication
  // cost model.
  double mean_pair_distance(const Topology& topo) const;

  std::string summary(const Topology& topo) const;
};

// Builds the queue assignment only (policy-independent): splits mappers into
// num_combiners contiguous groups, sizes differing by at most one.
std::vector<std::vector<std::size_t>> assign_mappers_to_combiners(
    std::size_t num_mappers, std::size_t num_combiners);

// Builds a full plan for the given policy. Throws ramr::ConfigError when
// num_mappers + num_combiners exceeds the machine's logical CPUs for a
// pinning policy (the OS-default policy accepts any count), or when either
// count is zero.
//
//   * kRamrPaired — walk the topology's proximity order; each combiner group
//     (its mappers plus the combiner itself) occupies consecutive slots, so
//     with ratio 1 the pair shares a physical core (L1/L2), and larger
//     groups stay within the smallest enclosing cache domain.
//   * kRoundRobin — thread i (mappers first, then combiners) is pinned to
//     OS CPU (i % num_logical), role-oblivious, matching the paper's RR
//     baseline.
//   * kOsDefault — no pinning.
PinningPlan make_plan(const Topology& topo, PinPolicy policy,
                      std::size_t num_mappers, std::size_t num_combiners);

}  // namespace ramr::topo
