// Hardware topology description and platform presets.
//
// The pinning policy (paper Sec. III-B, Fig. 3) needs to know, for every
// logical CPU the OS exposes: which socket/NUMA node it belongs to, which
// physical core it is a hyper-thread of, and how OS ids map onto that
// physical layout. This module models that, provides the two evaluation
// platforms (Haswell server, Xeon Phi) plus the paper's Fig. 3 example as
// presets, and can detect the host machine from /sys on Linux.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ramr::topo {

struct LogicalCpu {
  std::size_t os_id = 0;   // id as used by sched_setaffinity
  std::size_t socket = 0;  // package / NUMA node
  std::size_t core = 0;    // physical core, globally numbered
  std::size_t smt = 0;     // hyper-thread index within the core
};

// How far apart two logical CPUs are, in "communication cost" tiers. The
// paper's pinning policy minimises exactly this ("minimizes the distance in
// logical core units of co-operating threads").
enum class Distance : int {
  kSameCpu = 0,     // the same logical CPU
  kSameCore = 1,    // SMT siblings: shared L1/L2
  kSameSocket = 2,  // same package: shared L3 (HWL) / shared ring-L2 (PHI)
  kCrossSocket = 3, // QPI hop between NUMA nodes
};

class Topology {
 public:
  Topology(std::string name, std::vector<LogicalCpu> cpus,
           bool uniform_l2 = false);

  const std::string& name() const { return name_; }
  std::size_t num_logical() const { return cpus_.size(); }
  std::size_t num_sockets() const { return num_sockets_; }
  std::size_t num_cores() const { return num_cores_; }
  std::size_t smt_per_core() const { return smt_per_core_; }

  // All CPUs in OS-id order.
  const std::vector<LogicalCpu>& cpus() const { return cpus_; }
  // Lookup by OS id; throws ramr::Error for unknown ids.
  const LogicalCpu& by_os_id(std::size_t os_id) const;

  // Whether cores share one uniform L2 domain (Xeon Phi's ring of coherent
  // L2 slices). When true, distance between any two distinct cores within
  // the socket is kSameSocket regardless of core ids — this is what makes
  // pinning gains collapse to 1-3% on Phi (paper Sec. IV-B).
  bool uniform_l2() const { return uniform_l2_; }

  Distance distance(std::size_t os_a, std::size_t os_b) const;

  // The paper's thridtocpu() remap (Fig. 3): OS ids reordered so that
  // physically adjacent resources get consecutive positions — SMT siblings
  // first, then cores within a socket, then sockets. Pinning thread i to
  // proximity_order()[i] places co-operating neighbours on shared caches.
  std::vector<std::size_t> proximity_order() const;

  std::string summary() const;

 private:
  std::string name_;
  std::vector<LogicalCpu> cpus_;  // sorted by os_id
  std::size_t num_sockets_ = 0;
  std::size_t num_cores_ = 0;
  std::size_t smt_per_core_ = 1;
  bool uniform_l2_ = false;
};

// ----- presets ------------------------------------------------------------

// The paper's multi-core server: dual-socket Intel Haswell, 14 cores per
// socket, 2-way hyper-threading (56 logical CPUs), 35MB L3 per socket. OS
// ids follow the usual Linux enumeration: 0..13 socket0/smt0, 14..27
// socket1/smt0, 28..41 socket0/smt1, 42..55 socket1/smt1 — SMT siblings are
// 28 apart, which is what makes the remap worthwhile.
Topology haswell_server();

// The paper's many-core co-processor: Xeon Phi (KNC) with 57 cores @1.1GHz,
// 4-way SMT (228 hardware threads), per-core L2 slices joined by a
// bidirectional ring into a universally shared L2. OS ids are contiguous
// per core here (a simplification of KNC's off-by-one BSP numbering).
Topology xeon_phi();

// The worked example of Fig. 3: two NUMA nodes, four cores per node, 2-way
// hyper-threading (16 logical CPUs), same interleaved OS enumeration as the
// Haswell preset.
Topology fig3_example();

// The host machine, parsed from /sys/devices/system/cpu on Linux; falls
// back to a flat single-socket topology of hardware_concurrency() cores.
Topology host();

// Arbitrary server shape with the usual interleaved Linux enumeration
// (all smt0 CPUs of every socket first, then smt1, ...). Used for what-if
// density studies (bench_ablation_scaling) and property tests.
Topology make_server(const std::string& name, std::size_t sockets,
                     std::size_t cores_per_socket, std::size_t smt);

}  // namespace ramr::topo
