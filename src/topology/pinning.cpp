#include "topology/pinning.hpp"

#include <sstream>

#include "common/error.hpp"

namespace ramr::topo {

std::size_t PinningPlan::num_mappers() const {
  std::size_t n = 0;
  for (const auto& group : mappers_of_combiner) n += group.size();
  return n;
}

std::size_t PinningPlan::combiner_of_mapper(std::size_t mapper) const {
  for (std::size_t j = 0; j < mappers_of_combiner.size(); ++j) {
    for (std::size_t m : mappers_of_combiner[j]) {
      if (m == mapper) return j;
    }
  }
  throw Error("mapper index " + std::to_string(mapper) +
              " not present in pinning plan");
}

double PinningPlan::mean_pair_distance(const Topology& topo) const {
  if (mapper_cpu.empty() || combiner_cpu.empty()) {
    // Unpinned: model as the expected distance of random placement — the
    // worst tier present in the machine (conservative; the Linux scheduler
    // does better sometimes, which the simulator models separately).
    return topo.num_sockets() > 1
               ? static_cast<double>(Distance::kCrossSocket)
               : static_cast<double>(Distance::kSameSocket);
  }
  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t j = 0; j < mappers_of_combiner.size(); ++j) {
    for (std::size_t m : mappers_of_combiner[j]) {
      sum += static_cast<double>(
          topo.distance(mapper_cpu.at(m), combiner_cpu.at(j)));
      ++pairs;
    }
  }
  return pairs > 0 ? sum / static_cast<double>(pairs) : 0.0;
}

std::string PinningPlan::summary(const Topology& topo) const {
  std::ostringstream os;
  os << "policy=" << to_string(policy) << " mappers=" << num_mappers()
     << " combiners=" << num_combiners();
  os.precision(3);
  os << " mean_pair_distance=" << mean_pair_distance(topo);
  return os.str();
}

std::vector<std::vector<std::size_t>> assign_mappers_to_combiners(
    std::size_t num_mappers, std::size_t num_combiners) {
  if (num_mappers == 0 || num_combiners == 0) {
    throw ConfigError("need at least one mapper and one combiner");
  }
  if (num_combiners > num_mappers) {
    throw ConfigError("more combiners than mappers (" +
                      std::to_string(num_combiners) + " > " +
                      std::to_string(num_mappers) + ")");
  }
  std::vector<std::vector<std::size_t>> groups(num_combiners);
  const std::size_t base = num_mappers / num_combiners;
  const std::size_t extra = num_mappers % num_combiners;
  std::size_t next = 0;
  for (std::size_t j = 0; j < num_combiners; ++j) {
    const std::size_t size = base + (j < extra ? 1 : 0);
    for (std::size_t k = 0; k < size; ++k) groups[j].push_back(next++);
  }
  return groups;
}

PinningPlan make_plan(const Topology& topo, PinPolicy policy,
                      std::size_t num_mappers, std::size_t num_combiners) {
  PinningPlan plan;
  plan.policy = policy;
  plan.mappers_of_combiner =
      assign_mappers_to_combiners(num_mappers, num_combiners);

  if (policy == PinPolicy::kOsDefault) {
    return plan;
  }

  const std::size_t total = num_mappers + num_combiners;
  if (total > topo.num_logical()) {
    throw ConfigError("pinning " + std::to_string(total) + " threads onto " +
                      std::to_string(topo.num_logical()) + " logical CPUs (" +
                      topo.name() + ") is oversubscribed; use the os policy");
  }

  plan.mapper_cpu.resize(num_mappers);
  plan.combiner_cpu.resize(num_combiners);

  if (policy == PinPolicy::kRoundRobin) {
    // Role-oblivious (the paper's RR baseline): threads take OS CPUs in
    // plain enumeration order with no regard for which mapper feeds which
    // combiner. The two pools are created independently, so the OS id a
    // combiner receives bears no relation to its queue partners; rotating
    // the combiner block by half models that decorrelation (a plain
    // continuation would, for mappers == combiners under the usual Linux
    // enumeration, *accidentally* reproduce the paired layout: cpu j and
    // cpu j + N/2 are SMT siblings).
    const std::size_t n = topo.num_logical();
    for (std::size_t m = 0; m < num_mappers; ++m) {
      plan.mapper_cpu[m] = topo.cpus()[m % n].os_id;
    }
    for (std::size_t j = 0; j < num_combiners; ++j) {
      const std::size_t rotated = (j + num_combiners / 2) % num_combiners;
      plan.combiner_cpu[j] = topo.cpus()[(num_mappers + rotated) % n].os_id;
    }
    return plan;
  }

  // kRamrPaired: consume the proximity order group by group. Within a
  // group, the combiner sits in the middle of its mappers (for ratio 1 it
  // becomes the SMT sibling; for larger ratios it stays inside the group's
  // cache domain either way). Groups are aligned to SMT-sibling boundaries
  // when the machine has slack: an unaligned group would push every later
  // combiner off its mappers' physical core.
  const std::vector<std::size_t> order = topo.proximity_order();
  const std::size_t smt = topo.smt_per_core();
  // Slack available for alignment padding.
  std::size_t slack = topo.num_logical() - total;
  std::size_t cursor = 0;
  for (std::size_t j = 0; j < plan.mappers_of_combiner.size(); ++j) {
    const auto& group = plan.mappers_of_combiner[j];
    if (smt > 1 && cursor % smt != 0) {
      const std::size_t pad = smt - cursor % smt;
      if (pad <= slack) {
        cursor += pad;
        slack -= pad;
      }
    }
    // Slots for this group: group.size() mappers + 1 combiner.
    std::vector<std::size_t> slots;
    slots.reserve(group.size() + 1);
    for (std::size_t k = 0; k < group.size() + 1; ++k) {
      slots.push_back(order.at(cursor++));
    }
    // Mapper k gets slot k for k < half, combiner takes the slot after the
    // first mapper so ratio-1 pairs are SMT siblings; remaining mappers
    // shift one right.
    plan.combiner_cpu[j] = slots[1 % slots.size()];
    std::size_t slot_idx = 0;
    for (std::size_t k = 0; k < group.size(); ++k) {
      if (slot_idx == 1 && slots.size() > 1) ++slot_idx;  // combiner's slot
      plan.mapper_cpu[group[k]] = slots[slot_idx++];
    }
  }
  return plan;
}

}  // namespace ramr::topo
