#include "topology/topology.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "common/error.hpp"

namespace ramr::topo {

Topology::Topology(std::string name, std::vector<LogicalCpu> cpus,
                   bool uniform_l2)
    : name_(std::move(name)), cpus_(std::move(cpus)), uniform_l2_(uniform_l2) {
  if (cpus_.empty()) {
    throw Error("Topology '" + name_ + "' has no CPUs");
  }
  std::sort(cpus_.begin(), cpus_.end(),
            [](const LogicalCpu& a, const LogicalCpu& b) {
              return a.os_id < b.os_id;
            });
  for (std::size_t i = 0; i + 1 < cpus_.size(); ++i) {
    if (cpus_[i].os_id == cpus_[i + 1].os_id) {
      throw Error("Topology '" + name_ + "' has duplicate os_id " +
                  std::to_string(cpus_[i].os_id));
    }
  }
  std::set<std::size_t> sockets;
  std::set<std::size_t> cores;
  std::size_t max_smt = 0;
  for (const LogicalCpu& c : cpus_) {
    sockets.insert(c.socket);
    cores.insert(c.core);
    max_smt = std::max(max_smt, c.smt);
  }
  num_sockets_ = sockets.size();
  num_cores_ = cores.size();
  smt_per_core_ = max_smt + 1;
}

const LogicalCpu& Topology::by_os_id(std::size_t os_id) const {
  // cpus_ is sorted by os_id; ids are usually dense, so try direct index.
  if (os_id < cpus_.size() && cpus_[os_id].os_id == os_id) return cpus_[os_id];
  auto it = std::lower_bound(
      cpus_.begin(), cpus_.end(), os_id,
      [](const LogicalCpu& c, std::size_t id) { return c.os_id < id; });
  if (it == cpus_.end() || it->os_id != os_id) {
    throw Error("Topology '" + name_ + "' has no CPU with os_id " +
                std::to_string(os_id));
  }
  return *it;
}

Distance Topology::distance(std::size_t os_a, std::size_t os_b) const {
  const LogicalCpu& a = by_os_id(os_a);
  const LogicalCpu& b = by_os_id(os_b);
  if (a.os_id == b.os_id) return Distance::kSameCpu;
  if (a.core == b.core) return Distance::kSameCore;
  if (a.socket == b.socket) return Distance::kSameSocket;
  return Distance::kCrossSocket;
}

std::vector<std::size_t> Topology::proximity_order() const {
  // Sort by (socket, core, smt): SMT siblings adjacent, then cores within a
  // socket, then sockets. This is exactly the thridtocpu() sequence of
  // Fig. 3: for the 2x4x2 example it yields 0,8,1,9,2,10,3,11,4,12,...
  std::vector<std::size_t> order(cpus_.size());
  std::vector<const LogicalCpu*> ptrs(cpus_.size());
  for (std::size_t i = 0; i < cpus_.size(); ++i) ptrs[i] = &cpus_[i];
  std::sort(ptrs.begin(), ptrs.end(),
            [](const LogicalCpu* a, const LogicalCpu* b) {
              if (a->socket != b->socket) return a->socket < b->socket;
              if (a->core != b->core) return a->core < b->core;
              return a->smt < b->smt;
            });
  for (std::size_t i = 0; i < ptrs.size(); ++i) order[i] = ptrs[i]->os_id;
  return order;
}

std::string Topology::summary() const {
  std::ostringstream os;
  os << name_ << ": " << num_sockets_ << " socket(s) x "
     << num_cores_ / num_sockets_ << " core(s) x " << smt_per_core_
     << " thread(s) = " << num_logical() << " logical CPUs"
     << (uniform_l2_ ? " [uniform shared L2]" : "");
  return os.str();
}

namespace {

// Builds the interleaved Linux enumeration: for each SMT level, for each
// socket, for each core: one logical CPU. os ids are assigned in that scan
// order, so SMT siblings sit num_sockets*cores_per_socket apart.
Topology make_interleaved(std::string name, std::size_t sockets,
                          std::size_t cores_per_socket, std::size_t smt,
                          bool uniform_l2) {
  std::vector<LogicalCpu> cpus;
  cpus.reserve(sockets * cores_per_socket * smt);
  std::size_t os_id = 0;
  for (std::size_t t = 0; t < smt; ++t) {
    for (std::size_t s = 0; s < sockets; ++s) {
      for (std::size_t c = 0; c < cores_per_socket; ++c) {
        cpus.push_back(LogicalCpu{.os_id = os_id++,
                                  .socket = s,
                                  .core = s * cores_per_socket + c,
                                  .smt = t});
      }
    }
  }
  return Topology(std::move(name), std::move(cpus), uniform_l2);
}

}  // namespace

Topology haswell_server() {
  return make_interleaved("haswell-server", /*sockets=*/2,
                          /*cores_per_socket=*/14, /*smt=*/2,
                          /*uniform_l2=*/false);
}

Topology make_server(const std::string& name, std::size_t sockets,
                     std::size_t cores_per_socket, std::size_t smt) {
  return make_interleaved(name, sockets, cores_per_socket, smt,
                          /*uniform_l2=*/false);
}

Topology xeon_phi() {
  // One "socket"; contiguous ids per core (core = os_id / 4).
  std::vector<LogicalCpu> cpus;
  cpus.reserve(57 * 4);
  for (std::size_t core = 0; core < 57; ++core) {
    for (std::size_t t = 0; t < 4; ++t) {
      cpus.push_back(LogicalCpu{
          .os_id = core * 4 + t, .socket = 0, .core = core, .smt = t});
    }
  }
  return Topology("xeon-phi", std::move(cpus), /*uniform_l2=*/true);
}

Topology fig3_example() {
  return make_interleaved("fig3-example", /*sockets=*/2,
                          /*cores_per_socket=*/4, /*smt=*/2,
                          /*uniform_l2=*/false);
}

namespace {

// Reads a small integer file like /sys/devices/system/cpu/cpu3/topology/
// core_id; returns false on any problem.
bool read_sys_value(const std::string& path, std::size_t& out) {
  std::ifstream in(path);
  if (!in) return false;
  long long v = -1;
  in >> v;
  if (!in || v < 0) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

Topology host() {
  std::vector<LogicalCpu> cpus;
  const std::string base = "/sys/devices/system/cpu/cpu";
  for (std::size_t id = 0;; ++id) {
    std::size_t pkg = 0;
    std::size_t core = 0;
    const std::string dir = base + std::to_string(id) + "/topology/";
    if (!read_sys_value(dir + "physical_package_id", pkg)) break;
    if (!read_sys_value(dir + "core_id", core)) break;
    cpus.push_back(LogicalCpu{.os_id = id, .socket = pkg, .core = core,
                              .smt = 0});
  }
  if (!cpus.empty()) {
    // core_id values from /sys are per-package and may repeat across
    // packages; renumber (socket, core_id) pairs globally and derive smt
    // indices by arrival order within a physical core.
    std::vector<std::pair<std::size_t, std::size_t>> seen;  // (socket, core)
    std::vector<std::size_t> smt_count;
    for (LogicalCpu& c : cpus) {
      const std::pair<std::size_t, std::size_t> key{c.socket, c.core};
      auto it = std::find(seen.begin(), seen.end(), key);
      std::size_t idx;
      if (it == seen.end()) {
        idx = seen.size();
        seen.push_back(key);
        smt_count.push_back(0);
      } else {
        idx = static_cast<std::size_t>(it - seen.begin());
      }
      c.core = idx;
      c.smt = smt_count[idx]++;
    }
    return Topology("host", std::move(cpus));
  }
  // Fallback: flat topology, one socket, no SMT information.
  const unsigned hc = std::thread::hardware_concurrency();
  const std::size_t n = hc == 0 ? 1 : hc;
  cpus.clear();
  for (std::size_t id = 0; id < n; ++id) {
    cpus.push_back(LogicalCpu{.os_id = id, .socket = 0, .core = id, .smt = 0});
  }
  return Topology("host-flat", std::move(cpus));
}

}  // namespace ramr::topo
