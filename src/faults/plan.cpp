#include "faults/plan.hpp"

#include <cstdlib>
#include <sstream>
#include <string_view>

#include "common/error.hpp"

namespace ramr::faults {
namespace {

std::uint64_t parse_uint(std::string_view key, const std::string& value) {
  std::size_t pos = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || value.empty() || value[0] == '-') {
    throw ConfigError("fault spec: bad value '" + value + "' for " +
                      std::string(key));
  }
  return v;
}

double parse_probability(std::string_view key, const std::string& value) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || value.empty() || v < 0.0 || v > 1.0) {
    throw ConfigError("fault spec: " + std::string(key) +
                      " must be a probability in [0,1], got '" + value + "'");
  }
  return v;
}

bool parse_flag(std::string_view key, const std::string& value) {
  if (value == "1" || value == "true" || value == "yes") return true;
  if (value == "0" || value == "false" || value == "no") return false;
  throw ConfigError("fault spec: bad boolean '" + value + "' for " +
                    std::string(key));
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  plan.enabled = true;

  // Which modifier keys appeared, for the inert-modifier check below.
  struct {
    bool map_fires = false, map_transient = false, combiner = false;
    bool stall_ms = false, job_fires = false, seed = false;
    bool io_fires = false, io_transient = false;
  } seen;

  std::istringstream tokens(spec);
  std::string token;
  while (std::getline(tokens, token, ',')) {
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("fault spec: expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "map_task") {
      plan.map_task = static_cast<std::int64_t>(parse_uint(key, value));
    } else if (key == "map_fires") {
      plan.map_fires = static_cast<std::uint32_t>(parse_uint(key, value));
      seen.map_fires = true;
    } else if (key == "map_transient") {
      plan.map_transient = parse_flag(key, value);
      seen.map_transient = true;
    } else if (key == "map_p") {
      plan.map_p = parse_probability(key, value);
    } else if (key == "combiner_batch") {
      plan.combiner_batch = static_cast<std::int64_t>(parse_uint(key, value));
    } else if (key == "combiner") {
      plan.combiner = static_cast<std::uint32_t>(parse_uint(key, value));
      seen.combiner = true;
    } else if (key == "stall_emit") {
      plan.stall_emit = parse_uint(key, value);
    } else if (key == "stall_ms") {
      plan.stall_ms = static_cast<std::uint32_t>(parse_uint(key, value));
      seen.stall_ms = true;
    } else if (key == "alloc") {
      plan.alloc = static_cast<std::int64_t>(parse_uint(key, value));
    } else if (key == "job_run") {
      plan.job_run = static_cast<std::int64_t>(parse_uint(key, value));
    } else if (key == "job_fires") {
      plan.job_fires = static_cast<std::uint32_t>(parse_uint(key, value));
      seen.job_fires = true;
    } else if (key == "job_p") {
      plan.job_p = parse_probability(key, value);
    } else if (key == "io_read") {
      plan.io_read = static_cast<std::int64_t>(parse_uint(key, value));
    } else if (key == "io_fires") {
      plan.io_fires = static_cast<std::uint32_t>(parse_uint(key, value));
      seen.io_fires = true;
    } else if (key == "io_transient") {
      plan.io_transient = parse_flag(key, value);
      seen.io_transient = true;
    } else if (key == "seed") {
      plan.seed = parse_uint(key, value);
      seen.seed = true;
    } else {
      throw ConfigError(
          "fault spec: unknown key '" + key +
          "' (sites: map_task|map_p|combiner_batch|stall_emit|alloc|"
          "job_run|job_p|io_read; modifiers: map_fires|map_transient|"
          "combiner|stall_ms|job_fires|io_fires|io_transient|seed)");
    }
  }

  // A modifier without its site key would silently do nothing — the same
  // class of mistake the RAMR_* range checks catch. Fail fast, naming the
  // inert token and the site it needs.
  const bool map_site = plan.map_task >= 0 || plan.map_p > 0.0;
  const bool job_site = plan.job_run >= 0 || plan.job_p > 0.0;
  auto inert = [](const std::string& key, const std::string& needs) {
    throw ConfigError("fault spec: '" + key + "' is inert without " + needs);
  };
  if (seen.map_fires && !map_site) inert("map_fires", "map_task or map_p");
  if (seen.map_transient && !map_site) {
    inert("map_transient", "map_task or map_p");
  }
  if (seen.combiner && plan.combiner_batch < 0) {
    inert("combiner", "combiner_batch");
  }
  if (seen.stall_ms && plan.stall_emit == 0) inert("stall_ms", "stall_emit");
  if (seen.job_fires && !job_site) inert("job_fires", "job_run or job_p");
  if (seen.io_fires && plan.io_read < 0) inert("io_fires", "io_read");
  if (seen.io_transient && plan.io_read < 0) {
    inert("io_transient", "io_read");
  }
  if (seen.seed && plan.map_p <= 0.0 && plan.job_p <= 0.0) {
    inert("seed", "map_p or job_p");
  }
  return plan;
}

std::string FaultPlan::summary() const {
  if (!enabled) return "faults=off";
  std::ostringstream os;
  os << "faults=on";
  if (map_task >= 0) {
    os << " map_task=" << map_task << " fires=" << map_fires
       << (map_transient ? " transient" : " permanent");
  }
  if (map_p > 0.0) os << " map_p=" << map_p << " seed=" << seed;
  if (combiner_batch >= 0) {
    os << " combiner=" << combiner << " batch=" << combiner_batch;
  }
  if (stall_emit > 0) {
    os << " stall_emit=" << stall_emit << " stall_ms=" << stall_ms;
  }
  if (alloc >= 0) os << " alloc=" << alloc;
  if (job_run >= 0) os << " job_run=" << job_run << " fires=" << job_fires;
  if (job_p > 0.0) os << " job_p=" << job_p << " seed=" << seed;
  if (io_read >= 0) {
    os << " io_read=" << io_read << " fires=" << io_fires
       << (io_transient ? " transient" : " permanent");
  }
  return os.str();
}

}  // namespace ramr::faults
