// Anchor translation unit: includes the header-only injector once so that
// header breakage is caught when building the library itself, not first by
// a downstream target.
#include "faults/injector.hpp"

namespace ramr::faults {

// Nothing to instantiate; the include is the check.

}  // namespace ramr::faults
