// Deterministic fault-injection plan for the execution engine.
//
// A FaultPlan describes which injection sites fire during one run():
//
//   * map-task throw         — the Nth scheduled map-task attempt (a global
//     ordinal across all mappers) throws, permanently or transiently;
//     alternatively a seeded per-attempt probability selects victims;
//   * combiner throw         — combiner J throws when it has consumed its
//     Kth non-empty batch;
//   * emit-path stall        — the Nth emission sleeps (in cancellation-
//     aware slices), simulating a hung worker for watchdog tests;
//   * container-allocation failure — the Kth intermediate-container
//     construction throws, modelling setup-time resource exhaustion.
//
// Plans are parsed from a compact spec string so that they flow through
// RuntimeConfig and the RAMR_FAULTS env knob without the config layer
// depending on this library: comma-separated key=value tokens, e.g.
//
//   "map_task=5"                          fail map-task attempt #5, hard
//   "map_task=5,map_transient=1,map_fires=2"   fail transiently, twice
//   "map_p=0.01,seed=42"                  seeded 1% per-attempt failures
//   "combiner_batch=3,combiner=1"         combiner 1 dies on its 3rd batch
//   "stall_emit=1000,stall_ms=10000"      emission #1000 hangs for 10 s
//   "alloc=2"                             3rd container allocation fails
//   "job_run=0,job_fires=2"               first two whole-job runs fail
//   "job_p=0.05,seed=7"                   seeded 5% per-job-run failures
//   "io_read=3,io_transient=1"            4th window read fails transiently
//
// The empty string means "disabled" and parses to a plan whose Injector
// compiles down to a single predictable branch per site.
//
// Parsing is strict: unknown keys, bad values, and modifier keys whose
// site key is absent (e.g. `stall_ms` without `stall_emit`) are all
// ConfigErrors naming the offending token — the same fail-fast convention
// the RAMR_* env knobs follow.
#pragma once

#include <cstdint>
#include <string>

namespace ramr::faults {

struct FaultPlan {
  bool enabled = false;

  // Map-task site. `map_task` is the 0-based global attempt ordinal at (and
  // after) which the fault arms; `map_fires` bounds how many attempts
  // actually throw; `map_transient` selects TransientError classification
  // (eligible for task retry). `map_p` is an independent seeded
  // per-attempt probability in [0,1] for chaos-style runs.
  std::int64_t map_task = -1;  // -1 = site disabled
  std::uint32_t map_fires = 1;
  bool map_transient = false;
  double map_p = 0.0;

  // Combiner site: combiner `combiner` throws once it has consumed batch
  // number `combiner_batch` (1-based count of non-empty sweeps).
  std::int64_t combiner_batch = -1;  // -1 = site disabled
  std::uint32_t combiner = 0;

  // Emit-path stall: the `stall_emit`-th emission (1-based global ordinal)
  // sleeps for `stall_ms`, waking early if the run is cancelled.
  std::uint64_t stall_emit = 0;  // 0 = site disabled
  std::uint32_t stall_ms = 50;

  // Container-allocation site: the `alloc`-th make_container call
  // (0-based, in strategy construction order) throws.
  std::int64_t alloc = -1;  // -1 = site disabled

  // Job-boundary site (service mode): the `job_run`-th job-run attempt
  // (0-based global ordinal across the scheduler) throws transiently before
  // the job body starts; `job_fires` bounds how many attempts throw.
  // `job_p` is an independent seeded per-attempt probability, like map_p.
  std::int64_t job_run = -1;  // -1 = site disabled
  std::uint32_t job_fires = 1;
  double job_p = 0.0;

  // IO-read site (streaming runs, src/io/): the `io_read`-th window-read
  // attempt on the IO lane (0-based ordinal; feeder retries re-enter, so a
  // retried read draws a fresh ordinal) throws before the read is issued;
  // `io_fires` bounds how many attempts throw; `io_transient` selects
  // TransientError classification (the feeder retries up to the task-retry
  // budget, modelling a short read; permanent models EIO).
  std::int64_t io_read = -1;  // -1 = site disabled
  std::uint32_t io_fires = 1;
  bool io_transient = false;

  // Seed for the probabilistic map-task and job-run sites.
  std::uint64_t seed = 0;

  // Parse a spec string ("" = disabled plan). Throws ConfigError on unknown
  // keys, unparsable values, and modifier keys without their site key.
  static FaultPlan parse(const std::string& spec);

  // One-line human-readable form (inverse of parse, for logs).
  std::string summary() const;
};

}  // namespace ramr::faults
