// The runtime half of fault injection: one Injector per run(), shared by
// every worker of both pools, with one call site per fault class.
//
// Cost model: every site starts with a single predictable branch on a plain
// bool (`enabled`), so a disabled injector adds nothing measurable to the
// emit path or the task loop. All mutable state is atomic — the injector is
// the only cross-thread object in the fault path and must stay clean under
// ThreadSanitizer.
//
// Faults are thrown as InjectedFault (permanent — terminates the run) or
// TransientInjectedFault (derives from TransientError — eligible for
// task-level retry). Messages carry the site and worker attribution the
// acceptance tests assert on ("injected fault: ... on mapper-2").
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "common/cancellation.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "faults/plan.hpp"

namespace ramr::faults {

class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& what) : Error(what) {}
};

class TransientInjectedFault : public TransientError {
 public:
  explicit TransientInjectedFault(const std::string& what)
      : TransientError(what) {}
};

class Injector {
 public:
  Injector() = default;  // disabled
  explicit Injector(const FaultPlan& plan)
      : plan_(plan),
        map_fires_left_(static_cast<std::int64_t>(plan.map_fires)),
        job_fires_left_(static_cast<std::int64_t>(plan.job_fires)),
        io_fires_left_(static_cast<std::int64_t>(plan.io_fires)) {}

  bool enabled() const { return plan_.enabled; }
  const FaultPlan& plan() const { return plan_; }

  // The injected stall polls this token so a watchdog cancel wakes the
  // "hung" worker promptly instead of sleeping out the full stall.
  void bind(const common::CancellationToken* token) { token_ = token; }

  // Total faults injected so far (all sites, stalls included).
  std::size_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  // ---- sites --------------------------------------------------------------

  // Called by a mapper before each map-task attempt (retries re-enter).
  void on_map_task(std::size_t worker) {
    if (!plan_.enabled) return;
    const std::uint64_t ordinal =
        map_attempts_.fetch_add(1, std::memory_order_relaxed);
    bool fire = plan_.map_task >= 0 &&
                ordinal >= static_cast<std::uint64_t>(plan_.map_task);
    if (!fire && plan_.map_p > 0.0) {
      // Seeded per-attempt coin: deterministic given (seed, ordinal).
      Xoshiro256 rng(plan_.seed ^ (ordinal * 0x9e3779b97f4a7c15ULL));
      fire = rng.uniform() < plan_.map_p;
    }
    if (!fire) return;
    if (map_fires_left_.fetch_sub(1, std::memory_order_relaxed) <= 0) return;
    injected_.fetch_add(1, std::memory_order_relaxed);
    const std::string what = "injected fault: map task attempt " +
                             std::to_string(ordinal) + " on mapper-" +
                             std::to_string(worker) + " (phase map-combine)";
    if (plan_.map_transient) throw TransientInjectedFault(what);
    throw InjectedFault(what);
  }

  // Called by a combiner after consuming its `batch`-th non-empty batch
  // (1-based, per-combiner count).
  void on_combiner_batch(std::size_t worker, std::size_t batch) {
    if (!plan_.enabled || plan_.combiner_batch < 0) return;
    if (worker != plan_.combiner ||
        batch < static_cast<std::uint64_t>(plan_.combiner_batch)) {
      return;
    }
    if (combiner_fired_.exchange(true, std::memory_order_relaxed)) return;
    injected_.fetch_add(1, std::memory_order_relaxed);
    throw InjectedFault("injected fault: combiner batch " +
                        std::to_string(batch) + " on combiner-" +
                        std::to_string(worker) + " (phase map-combine)");
  }

  // Called on the emit path. Stalls (sleeps) the `stall_emit`-th emission
  // in 1 ms cancellation-aware slices; never throws.
  void on_emit(std::size_t /*worker*/) {
    if (!plan_.enabled || plan_.stall_emit == 0) return;
    const std::uint64_t ordinal =
        emits_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (ordinal != plan_.stall_emit) return;
    injected_.fetch_add(1, std::memory_order_relaxed);
    const auto slice = std::chrono::milliseconds(1);
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(plan_.stall_ms);
    while (std::chrono::steady_clock::now() < until) {
      if (token_ != nullptr && token_->cancelled()) return;
      std::this_thread::sleep_for(slice);
    }
  }

  // Called by the service scheduler before each job-run attempt (retries
  // re-enter, so a retried job draws a fresh ordinal). Always transient —
  // the job boundary is exactly where job-level retry applies.
  void on_job_run(const std::string& job_name) {
    if (!plan_.enabled) return;
    if (plan_.job_run < 0 && plan_.job_p <= 0.0) return;
    const std::uint64_t ordinal =
        job_runs_.fetch_add(1, std::memory_order_relaxed);
    bool fire = plan_.job_run >= 0 &&
                ordinal >= static_cast<std::uint64_t>(plan_.job_run);
    if (!fire && plan_.job_p > 0.0) {
      // Same deterministic coin as the map-task site, offset so the two
      // sites draw independent streams from one seed.
      Xoshiro256 rng(plan_.seed ^ 0xa5a5a5a5a5a5a5a5ULL ^
                     (ordinal * 0x9e3779b97f4a7c15ULL));
      fire = rng.uniform() < plan_.job_p;
    }
    if (!fire) return;
    if (job_fires_left_.fetch_sub(1, std::memory_order_relaxed) <= 0) return;
    injected_.fetch_add(1, std::memory_order_relaxed);
    throw TransientInjectedFault("injected fault: job run attempt " +
                                 std::to_string(ordinal) + " of " + job_name +
                                 " (job boundary)");
  }

  // Called by the IO-lane feeder before each window-read attempt
  // (streaming runs; feeder retries re-enter and draw a fresh ordinal).
  // Fires *before* the read is issued, so a transient fire retried by the
  // feeder re-reads exactly the same stream position.
  void on_io_read(std::uint64_t window) {
    if (!plan_.enabled || plan_.io_read < 0) return;
    const std::uint64_t ordinal =
        io_reads_.fetch_add(1, std::memory_order_relaxed);
    if (ordinal < static_cast<std::uint64_t>(plan_.io_read)) return;
    if (io_fires_left_.fetch_sub(1, std::memory_order_relaxed) <= 0) return;
    injected_.fetch_add(1, std::memory_order_relaxed);
    const std::string what = "injected fault: io read attempt " +
                             std::to_string(ordinal) + " of window " +
                             std::to_string(window) + " (io-lane)";
    if (plan_.io_transient) throw TransientInjectedFault(what);
    throw InjectedFault(what);
  }

  // Called before each intermediate-container construction (0-based global
  // ordinal in strategy construction order).
  void on_container_alloc() {
    if (!plan_.enabled || plan_.alloc < 0) return;
    const std::uint64_t ordinal =
        allocs_.fetch_add(1, std::memory_order_relaxed);
    if (ordinal != static_cast<std::uint64_t>(plan_.alloc)) return;
    injected_.fetch_add(1, std::memory_order_relaxed);
    throw InjectedFault("injected fault: container allocation " +
                        std::to_string(ordinal) + " failed");
  }

 private:
  FaultPlan plan_;
  const common::CancellationToken* token_ = nullptr;
  std::atomic<std::uint64_t> map_attempts_{0};
  std::atomic<std::int64_t> map_fires_left_{0};
  std::atomic<bool> combiner_fired_{false};
  std::atomic<std::uint64_t> emits_{0};
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> job_runs_{0};
  std::atomic<std::int64_t> job_fires_left_{0};
  std::atomic<std::uint64_t> io_reads_{0};
  std::atomic<std::int64_t> io_fires_left_{0};
  std::atomic<std::size_t> injected_{0};
};

}  // namespace ramr::faults
