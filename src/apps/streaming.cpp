#include "apps/streaming.hpp"

#include <memory>
#include <utility>

#include "core/runtime.hpp"
#include "io/chunk_source.hpp"
#include "io/stream_feeder.hpp"
#include "topology/topology.hpp"

namespace ramr::apps {

StreamWordCountResult run_wordcount_stream(const std::string& path,
                                           const StreamOptions& opts) {
  io::StreamInput input(opts.io, opts.split_bytes);
  io::StreamFeeder feeder(
      io::open_chunk_source(path, opts.io, io::text_record_break), input,
      opts.io);
  StreamWordCountApp app;
  app.fold_words = opts.fold_words;
  app.max_distinct_words = opts.max_distinct_words;
  core::Runtime<StreamWordCountApp> rt(topo::host(), opts.config);
  return rt.run_stream(app, input, feeder);
}

StreamMatchResult run_string_match_stream(
    const std::string& path, const std::vector<std::string>& patterns,
    const StreamOptions& opts) {
  io::StreamInput stream(opts.io, opts.split_bytes);
  io::StreamFeeder feeder(
      io::open_chunk_source(path, opts.io, io::text_record_break), stream,
      opts.io);
  StreamSmInput input;
  input.stream = &stream;
  input.patterns = patterns;
  StreamStringMatchApp app;
  app.num_patterns = patterns.size();
  app.fold_words = opts.fold_words;
  core::Runtime<StreamStringMatchApp> rt(topo::host(), opts.config);
  return rt.run_stream(app, input, feeder);
}

StreamHistogramResult run_histogram_stream(const std::string& path,
                                           const StreamOptions& opts) {
  io::StreamInput input(opts.io, opts.split_bytes);
  // Binary stream: windows cut anywhere (null record break).
  io::StreamFeeder feeder(io::open_chunk_source(path, opts.io, nullptr),
                          input, opts.io);
  StreamHistogramApp app;
  core::Runtime<StreamHistogramApp> rt(topo::host(), opts.config);
  return rt.run_stream(app, input, feeder);
}

}  // namespace ramr::apps
