// Histogram (HG) — image-processing suite app.
//
// Builds the 3x256-bin per-channel histogram of an interleaved RGB pixel
// byte stream. Keys are channel*256 + intensity, i.e. the range [0, 768) is
// known a priori, so the default container is the thread-local fixed array;
// the hash flavor is a fixed-size hash table over the same 768 keys.
//
// HG is one of the paper's two "light workload" apps: one trivial emission
// per input byte, so the SPSC-queue cost dominates under RAMR (Figs. 8/9
// show a ~3x slowdown) — it is the negative control of the evaluation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <type_traits>
#include <vector>

#include "apps/flavor.hpp"
#include "containers/combiners.hpp"
#include "containers/fixed_array_container.hpp"
#include "containers/hash_container.hpp"
#include "simd/kernels.hpp"

namespace ramr::apps {

inline constexpr std::size_t kHistogramBins = 3 * 256;

struct PixelInput {
  std::vector<std::uint8_t> bytes;  // interleaved R,G,B
  std::size_t split_bytes = 64 * 1024;
};

template <ContainerFlavor F>
struct HistogramApp {
  static constexpr const char* kName = "hg";

  using input_type = PixelInput;
  using container_type = std::conditional_t<
      F == ContainerFlavor::kDefault,
      containers::FixedArrayContainer<std::uint64_t,
                                      containers::CountCombiner>,
      containers::FixedHashContainer<std::uint64_t, std::uint64_t,
                                     containers::CountCombiner>>;

  std::size_t num_splits(const input_type& in) const {
    if (in.bytes.empty()) return 0;
    return (in.bytes.size() + in.split_bytes - 1) / in.split_bytes;
  }

  container_type make_container() const {
    return container_type(kHistogramBins);
  }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    const std::size_t begin = split * in.split_bytes;
    const std::size_t end =
        std::min(begin + in.split_bytes, in.bytes.size());
    const simd::Active& sk = simd::active();
    if (sk.mode == simd::Mode::kOff) {
      // Historical per-byte emission (RAMR_SIMD unset/off).
      for (std::size_t i = begin; i < end; ++i) {
        const std::uint64_t channel = i % 3;
        emit(channel * 256 + in.bytes[i], std::uint64_t{1});
      }
      return;
    }
    // Kernel path: bin the whole split locally (gather-free, per-lane
    // partials under native), then emit one aggregated count per non-empty
    // bin — CountCombiner sums counts, so the output is identical to the
    // per-byte emission while the emit traffic drops from one record per
    // byte to at most 768 per split.
    std::uint64_t bins[kHistogramBins] = {};
    sk.kernels->histogram_channels(in.bytes.data() + begin, end - begin,
                                   begin % 3, bins);
    for (std::size_t b = 0; b < kHistogramBins; ++b) {
      if (bins[b] != 0) emit(static_cast<std::uint64_t>(b), bins[b]);
    }
  }
};

// Serial reference: bin -> count for all non-empty bins.
std::map<std::uint64_t, std::uint64_t> histogram_reference(
    const PixelInput& in);

}  // namespace ramr::apps
