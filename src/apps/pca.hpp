// Principal Component Analysis (PCA) — scientific suite app.
//
// Two MR jobs over an m x n matrix whose rows are variables (Phoenix's
// formulation): (1) row means, (2) the upper triangle of the covariance
// matrix. Both are column-split: each map task processes a chunk of columns
// and emits one partial sum per row (mean job) or per row pair (cov job) —
// the Phoenix++ idiom of combining within the task before emitting.
//
// Paper Fig. 10: PCA has the highest IPB of the suite (O(rows^2) work per
// column) but almost no stalls (regular, cache-friendly access), so RAMR
// neither helps nor hurts it — map dominates and there is nothing to
// overlap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <type_traits>
#include <vector>

#include "apps/flavor.hpp"
#include "apps/inputs.hpp"
#include "containers/combiners.hpp"
#include "containers/fixed_array_container.hpp"
#include "containers/hash_container.hpp"
#include "simd/kernels.hpp"

namespace ramr::apps {

// Packed key for the (i, j), j <= i, upper-triangle pair.
constexpr std::uint64_t pca_pack(std::size_t i, std::size_t j) {
  return static_cast<std::uint64_t>(i) * (i + 1) / 2 + j;
}
constexpr std::size_t pca_pair_count(std::size_t rows) {
  return rows * (rows + 1) / 2;
}

struct PcaInput {
  Matrix matrix;
  std::vector<double> row_means;  // required by the covariance job
  std::size_t split_cols = 64;
};

// ---- job 1: row means ---------------------------------------------------------

template <ContainerFlavor F>
struct PcaMeanApp {
  static constexpr const char* kName = "pca-mean";

  using input_type = PcaInput;
  using container_type = std::conditional_t<
      F == ContainerFlavor::kDefault,
      containers::FixedArrayContainer<double, containers::SumCombiner<double>>,
      containers::HashContainer<std::uint64_t, double,
                                containers::SumCombiner<double>>>;

  std::size_t num_splits(const input_type& in) const {
    if (in.matrix.cols == 0) return 0;
    return (in.matrix.cols + in.split_cols - 1) / in.split_cols;
  }

  container_type make_container() const {
    return container_type(in_rows_hint == 0 ? 1 : in_rows_hint);
  }

  // Sizing hint for the container (rows of the matrix being processed).
  std::size_t in_rows_hint = 0;

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    const std::size_t c0 = split * in.split_cols;
    const std::size_t c1 = std::min(c0 + in.split_cols, in.matrix.cols);
    const simd::Active& sk = simd::active();
    if (sk.mode == simd::Mode::kOff) {
      // Historical single-accumulator loop (RAMR_SIMD unset/off).
      for (std::size_t r = 0; r < in.matrix.rows; ++r) {
        double sum = 0.0;
        for (std::size_t c = c0; c < c1; ++c) sum += in.matrix.at(r, c);
        emit(static_cast<std::uint64_t>(r), sum);
      }
      return;
    }
    // Kernel path: four-partial-sum reduction over the row's contiguous
    // column slice (the matrix is row-major). scalar and native agree
    // bit-for-bit; the accumulation ORDER differs from the off loop, so
    // partial sums may differ from it in the last ulps.
    for (std::size_t r = 0; r < in.matrix.rows; ++r) {
      const double* row = in.matrix.data.data() + r * in.matrix.cols;
      emit(static_cast<std::uint64_t>(r),
           sk.kernels->sum_f64(row + c0, c1 - c0));
    }
  }
};

// ---- job 2: covariance upper triangle -------------------------------------------

template <ContainerFlavor F>
struct PcaCovApp {
  static constexpr const char* kName = "pca";

  using input_type = PcaInput;
  // Default: fixed array over the packed triangle (keys known a priori).
  // Hash flavor: *regular* hash table (paper: "regular hash tables in MM
  // and PCA").
  using container_type = std::conditional_t<
      F == ContainerFlavor::kDefault,
      containers::FixedArrayContainer<double, containers::SumCombiner<double>>,
      containers::HashContainer<std::uint64_t, double,
                                containers::SumCombiner<double>>>;

  std::size_t rows = 0;  // must match input.matrix.rows

  std::size_t num_splits(const input_type& in) const {
    if (in.matrix.cols == 0) return 0;
    return (in.matrix.cols + in.split_cols - 1) / in.split_cols;
  }

  container_type make_container() const {
    return container_type(pca_pair_count(rows == 0 ? 1 : rows));
  }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    const std::size_t c0 = split * in.split_cols;
    const std::size_t c1 = std::min(c0 + in.split_cols, in.matrix.cols);
    const simd::Active& sk = simd::active();
    if (sk.mode == simd::Mode::kOff) {
      // Historical single-accumulator loop (RAMR_SIMD unset/off).
      for (std::size_t i = 0; i < in.matrix.rows; ++i) {
        const double mi = in.row_means[i];
        for (std::size_t j = 0; j <= i; ++j) {
          const double mj = in.row_means[j];
          double sum = 0.0;
          for (std::size_t c = c0; c < c1; ++c) {
            sum += (in.matrix.at(i, c) - mi) * (in.matrix.at(j, c) - mj);
          }
          emit(pca_pack(i, j), sum);
        }
      }
      return;
    }
    // Kernel path: centered-product reduction over the two rows' column
    // slices with the deterministic four-partial-sum schedule (explicitly
    // no FMA contraction — see simd/kernels.hpp).
    const double* base = in.matrix.data.data();
    for (std::size_t i = 0; i < in.matrix.rows; ++i) {
      const double* row_i = base + i * in.matrix.cols;
      const double mi = in.row_means[i];
      for (std::size_t j = 0; j <= i; ++j) {
        emit(pca_pack(i, j),
             sk.kernels->dot_centered_f64(row_i + c0,
                                          base + j * in.matrix.cols + c0, mi,
                                          in.row_means[j], c1 - c0));
      }
    }
  }
};

// Serial helpers/references.
std::vector<double> pca_row_means(const Matrix& m);
std::map<std::uint64_t, double> pca_cov_reference(const PcaInput& in);

}  // namespace ramr::apps
