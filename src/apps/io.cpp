#include "apps/io.hpp"

#include <iterator>

#include "common/error.hpp"

namespace ramr::apps {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open '" + path + "' for reading");
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) throw Error("read of '" + path + "' failed");
  return data;
}

}  // namespace

TextInput load_text_file(const std::string& path, std::size_t split_bytes,
                         bool fold_words) {
  TextInput input;
  input.text = read_file(path);
  input.split_bytes = split_bytes;
  if (fold_words) {
    normalize_words(input.text);
  } else {
    for (char& c : input.text) {
      if (c == '\n' || c == '\r' || c == '\t' || c == '\v' || c == '\f') {
        c = ' ';
      }
    }
  }
  return input;
}

PixelInput load_binary_file(const std::string& path,
                            std::size_t split_bytes) {
  const std::string data = read_file(path);
  PixelInput input;
  input.bytes.assign(data.begin(), data.end());
  input.split_bytes = split_bytes;
  return input;
}

}  // namespace ramr::apps
