#include "apps/io.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/error.hpp"

namespace ramr::apps {

namespace {

// The errno captured at stream-open/read failure, as human-readable detail
// ("No such file or directory (errno 2)"). iostreams do not preserve errno
// reliably across later calls, so capture it right at the failure point.
std::string errno_detail() {
  const int err = errno;
  if (err == 0) return "unknown error";
  return std::string(std::strerror(err)) + " (errno " + std::to_string(err) +
         ")";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("cannot open '" + path + "' for reading: " + errno_detail());
  }
  std::string data;
  // Pre-size from the file size: one allocation instead of the doubling
  // ladder of istreambuf_iterator appends (the difference is seconds on a
  // multi-GB slurp). Streams whose size is unknowable fall back to 0.
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (!ec && size > 0) data.reserve(static_cast<std::size_t>(size));
  char buf[1 << 16];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    data.append(buf, static_cast<std::size_t>(in.gcount()));
  }
  if (in.bad()) {
    throw Error("read of '" + path + "' failed: " + errno_detail());
  }
  return data;
}

}  // namespace

TextInput load_text_file(const std::string& path, std::size_t split_bytes,
                         bool fold_words) {
  TextInput input;
  input.text = read_file(path);
  input.split_bytes = split_bytes;
  if (fold_words) {
    normalize_words(input.text);
  } else {
    for (char& c : input.text) {
      if (c == '\n' || c == '\r' || c == '\t' || c == '\v' || c == '\f') {
        c = ' ';
      }
    }
  }
  return input;
}

PixelInput load_binary_file(const std::string& path,
                            std::size_t split_bytes) {
  const std::string data = read_file(path);
  PixelInput input;
  input.bytes.assign(data.begin(), data.end());
  input.split_bytes = split_bytes;
  return input;
}

}  // namespace ramr::apps
