#include "apps/suite.hpp"

#include <algorithm>
#include <cmath>

#include "common/env.hpp"
#include "common/error.hpp"

namespace ramr::apps {

namespace {

constexpr std::uint64_t kMB = 1024ull * 1024ull;
constexpr std::uint64_t kK = 1000ull;

std::string human_bytes(std::uint64_t bytes) {
  if (bytes >= 1024 * kMB && bytes % (1024 * kMB) == 0) {
    return std::to_string(bytes / (1024 * kMB)) + "GB";
  }
  if (bytes % kMB == 0) return std::to_string(bytes / kMB) + "MB";
  return std::to_string(bytes) + "B";
}

std::string human_count(std::uint64_t n) {
  if (n >= 1000 * kK && n % (1000 * kK) == 0) {
    return std::to_string(n / (1000 * kK)) + "M";
  }
  if (n % kK == 0) return std::to_string(n / kK) + "K";
  return std::to_string(n);
}

}  // namespace

const char* app_name(AppId app) {
  switch (app) {
    case AppId::kWordCount: return "wc";
    case AppId::kKMeans: return "km";
    case AppId::kHistogram: return "hg";
    case AppId::kPca: return "pca";
    case AppId::kMatrixMultiply: return "mm";
    case AppId::kLinearRegression: return "lr";
  }
  return "?";
}

const char* app_full_name(AppId app) {
  switch (app) {
    case AppId::kWordCount: return "Word Count";
    case AppId::kKMeans: return "KMeans";
    case AppId::kHistogram: return "Histogram";
    case AppId::kPca: return "PCA";
    case AppId::kMatrixMultiply: return "Matrix Multiply";
    case AppId::kLinearRegression: return "Linear Regression";
  }
  return "?";
}

const char* size_name(SizeClass size) {
  switch (size) {
    case SizeClass::kSmall: return "small";
    case SizeClass::kMedium: return "medium";
    case SizeClass::kLarge: return "large";
  }
  return "?";
}

const char* platform_name(PlatformId platform) {
  return platform == PlatformId::kHaswell ? "HWL" : "PHI";
}

std::string InputSize::describe(AppId app) const {
  switch (app) {
    case AppId::kWordCount:
    case AppId::kHistogram:
    case AppId::kLinearRegression:
      return human_bytes(primary);
    case AppId::kKMeans:
      return human_count(primary);
    case AppId::kPca:
      return std::to_string(primary);
    case AppId::kMatrixMultiply:
      return human_count(primary) + "x" + human_count(secondary);
  }
  return "?";
}

InputSize table1_input(AppId app, PlatformId platform, SizeClass size) {
  const bool hwl = platform == PlatformId::kHaswell;
  const int s = static_cast<int>(size);  // 0 small, 1 medium, 2 large
  switch (app) {
    case AppId::kWordCount:
    case AppId::kHistogram: {
      // HWL: 400MB / 800MB / 1.6GB; PHI: 200MB / 400MB / 800MB.
      static constexpr std::uint64_t hwl_mb[] = {400, 800, 1638};
      static constexpr std::uint64_t phi_mb[] = {200, 400, 800};
      const std::uint64_t mb = hwl ? hwl_mb[s] : phi_mb[s];
      // 1.6GB is stored exactly (1638.4MB rounds to 1.6 * 1024 MB).
      const std::uint64_t bytes =
          (hwl && s == 2) ? (16 * 1024 * kMB) / 10 : mb * kMB;
      return {bytes, 0};
    }
    case AppId::kKMeans: {
      // HWL: 400K / 800K / 2M points; PHI: 200K / 400K / 800K.
      static constexpr std::uint64_t hwl_pts[] = {400 * kK, 800 * kK,
                                                  2000 * kK};
      static constexpr std::uint64_t phi_pts[] = {200 * kK, 400 * kK,
                                                  800 * kK};
      return {hwl ? hwl_pts[s] : phi_pts[s], 0};
    }
    case AppId::kPca: {
      // Square matrices: HWL 500 / 800 / 1000; PHI 300 / 500 / 800.
      static constexpr std::uint64_t hwl_dim[] = {500, 800, 1000};
      static constexpr std::uint64_t phi_dim[] = {300, 500, 800};
      const std::uint64_t d = hwl ? hwl_dim[s] : phi_dim[s];
      return {d, d};
    }
    case AppId::kMatrixMultiply: {
      // Same on both platforms: 2Kx2K / 3Kx2K / 4Kx4K.
      static constexpr std::uint64_t r[] = {2000, 3000, 4000};
      static constexpr std::uint64_t c[] = {2000, 2000, 4000};
      return {r[s], c[s]};
    }
    case AppId::kLinearRegression: {
      // HWL: 200MB / 400MB / 1GB; PHI: 200MB / 400MB / 600MB.
      static constexpr std::uint64_t hwl_mb[] = {200, 400, 1024};
      static constexpr std::uint64_t phi_mb[] = {200, 400, 600};
      return {(hwl ? hwl_mb[s] : phi_mb[s]) * kMB, 0};
    }
  }
  throw Error("table1_input: unknown app");
}

std::uint64_t bench_scale_from_env() {
  const std::uint64_t scale = env::get_uint("RAMR_BENCH_SCALE", 1);
  return scale == 0 ? 1 : scale;
}

namespace {
std::uint64_t scaled(std::uint64_t v, std::uint64_t divisor,
                     std::uint64_t floor) {
  return std::max<std::uint64_t>(floor, v / (divisor == 0 ? 1 : divisor));
}
}  // namespace

TextInput make_wc_input(const InputSize& size, std::uint64_t divisor) {
  TextInput in;
  in.text = make_text(scaled(size.primary, divisor, 1024), /*vocabulary=*/2000,
                      /*seed=*/0x5c0de);
  return in;
}

PixelInput make_hg_input(const InputSize& size, std::uint64_t divisor) {
  PixelInput in;
  in.bytes = make_pixels(scaled(size.primary, divisor, 3072), 0x819);
  return in;
}

LrInput make_lr_input(const InputSize& size, std::uint64_t divisor) {
  LrInput in;
  // 4 bytes per LrPoint: the paper's "N MB" inputs are N*MB/4 points.
  in.points = make_lr_points(scaled(size.primary / 4, divisor, 1024), 0x17);
  return in;
}

KmInput make_km_input(const InputSize& size, std::uint64_t divisor,
                      std::size_t num_clusters) {
  KmInput in;
  in.points =
      make_points(scaled(size.primary, divisor, 256), num_clusters, 0x314);
  in.centroids = initial_centroids(in.points, num_clusters);
  return in;
}

PcaInput make_pca_input(const InputSize& size, std::uint64_t divisor) {
  // Matrix dimensions scale with the square root of the divisor so the
  // total work scales roughly linearly with it.
  const auto shrink = [&](std::uint64_t v) {
    const double f = std::sqrt(static_cast<double>(divisor == 0 ? 1 : divisor));
    return std::max<std::uint64_t>(8, static_cast<std::uint64_t>(
                                          static_cast<double>(v) / f));
  };
  PcaInput in;
  in.matrix = make_matrix(shrink(size.primary), shrink(size.secondary), 0x9ca);
  in.row_means = pca_row_means(in.matrix);
  return in;
}

MmInput make_mm_input(const InputSize& size, std::uint64_t divisor) {
  const auto shrink = [&](std::uint64_t v) {
    const double f = std::cbrt(static_cast<double>(divisor == 0 ? 1 : divisor));
    return std::max<std::uint64_t>(8, static_cast<std::uint64_t>(
                                          static_cast<double>(v) / f));
  };
  MmInput in;
  const std::size_t rows = shrink(size.primary);
  const std::size_t cols = shrink(size.secondary);
  in.a = make_matrix(rows, cols, 0x3a);
  in.b = make_matrix(cols, rows, 0x3b);
  return in;
}

}  // namespace ramr::apps
