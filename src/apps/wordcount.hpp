// Word Count (WC) — enterprise-domain suite app.
//
// Counts word occurrences in a text. The input is split into ~split_bytes
// byte ranges; ranges are snapped to word boundaries (a split that does not
// start at 0 skips its leading partial word; every split finishes the word
// it ends inside). Keys are std::string_view slices of the input text —
// zero-copy, as in Phoenix++'s pointer-based keys — so results remain valid
// only while the input string is alive.
//
// Containers: the key set is not known a priori, so the *default* container
// is a regular hash table (the paper: "except WC that uses thread-local
// hash tables"); the hash flavor is a fixed-size hash table bounded by
// `max_distinct_words`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>

#include "apps/flavor.hpp"
#include "containers/combiners.hpp"
#include "containers/hash_container.hpp"
#include "simd/kernels.hpp"

namespace ramr::apps {

// Word separator class shared by the tokenizing apps and their references:
// ' ' plus \t \n \v \f \r. Historically only ' ' separated words, which
// silently glued words across raw tabs/newlines in hand-constructed inputs
// (file loads fold whitespace to ' ' before map time, so those never saw
// the bug); the scalar and SIMD scanners share this one predicate so they
// agree byte-for-byte.
using simd::is_word_separator;

struct TextInput {
  std::string text;
  std::size_t split_bytes = 64 * 1024;
};

// Normalises real-world text in place so the space-delimited scanners
// apply: every non-alphanumeric byte becomes a space and ASCII letters are
// lower-cased ("Hello, world!" counts as "hello world"). Generated suite
// inputs are already in this form; use this for files (see apps/io.hpp).
void normalize_words(std::string& text);

template <ContainerFlavor F>
struct WordCountApp {
  static constexpr const char* kName = "wc";

  using input_type = TextInput;
  using container_type = std::conditional_t<
      F == ContainerFlavor::kDefault,
      containers::HashContainer<std::string_view, std::uint64_t,
                                containers::CountCombiner>,
      containers::FixedHashContainer<std::string_view, std::uint64_t,
                                     containers::CountCombiner>>;

  // Capacity bound for the fixed-size hash flavor (and sizing hint for the
  // regular one).
  std::size_t max_distinct_words = 4096;

  std::size_t num_splits(const input_type& in) const {
    if (in.text.empty()) return 0;
    return (in.text.size() + in.split_bytes - 1) / in.split_bytes;
  }

  container_type make_container() const {
    return container_type(max_distinct_words);
  }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    // Ownership rule: a split owns exactly the words that *start* inside its
    // raw byte range [begin, end) — a word crossing `end` is consumed in
    // full here, and a word crossing `begin` was already consumed by the
    // previous split (so a leading partial word is skipped).
    const std::string_view text(in.text);
    std::size_t begin = split * in.split_bytes;
    const std::size_t end = std::min(begin + in.split_bytes, text.size());
    const simd::Active& sk = simd::active();
    if (sk.mode == simd::Mode::kOff) {
      // Historical inline loop (RAMR_SIMD unset/off).
      if (begin != 0 && !is_word_separator(text[begin - 1])) {
        while (begin < end && !is_word_separator(text[begin])) ++begin;
      }
      std::size_t pos = begin;
      for (;;) {
        while (pos < end && is_word_separator(text[pos])) ++pos;
        if (pos >= end) break;  // next word starts in the next split
        std::size_t word_end = pos;
        while (word_end < text.size() && !is_word_separator(text[word_end])) {
          ++word_end;
        }
        emit(text.substr(pos, word_end - pos), std::uint64_t{1});
        pos = word_end;
      }
      return;
    }
    // Kernel-table tokenization: the same scan expressed as separator-class
    // primitives (vectorized under RAMR_SIMD=native).
    const simd::Kernels& k = *sk.kernels;
    const char* data = text.data();
    if (begin != 0 && !is_word_separator(text[begin - 1])) {
      begin = k.find_separator(data, begin, end);
    }
    std::size_t pos = begin;
    for (;;) {
      pos = k.skip_separators(data, pos, end);
      if (pos >= end) break;  // next word starts in the next split
      const std::size_t word_end = k.find_separator(data, pos, text.size());
      emit(text.substr(pos, word_end - pos), std::uint64_t{1});
      pos = word_end;
    }
  }
};

// Serial reference.
std::map<std::string_view, std::uint64_t> wordcount_reference(
    const TextInput& in);

}  // namespace ramr::apps
