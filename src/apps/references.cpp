// Serial reference implementations for the suite apps — ground truth for
// runtime equivalence tests.
#include <algorithm>

#include "apps/histogram.hpp"
#include "apps/kmeans.hpp"
#include "apps/linear_regression.hpp"
#include "apps/matmul.hpp"
#include "apps/pca.hpp"
#include "apps/string_match.hpp"
#include "apps/wordcount.hpp"
#include "common/error.hpp"

namespace ramr::apps {

void normalize_words(std::string& text) {
  for (char& c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u >= 'A' && u <= 'Z') {
      c = static_cast<char>(u - 'A' + 'a');
    } else if (!((u >= 'a' && u <= 'z') || (u >= '0' && u <= '9'))) {
      c = ' ';
    }
  }
}

std::map<std::string_view, std::uint64_t> wordcount_reference(
    const TextInput& in) {
  std::map<std::string_view, std::uint64_t> out;
  const std::string_view text(in.text);
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && is_word_separator(text[pos])) ++pos;
    std::size_t end = pos;
    while (end < text.size() && !is_word_separator(text[end])) ++end;
    if (end > pos) out[text.substr(pos, end - pos)]++;
    pos = end;
  }
  return out;
}

std::map<std::uint64_t, std::uint64_t> histogram_reference(
    const PixelInput& in) {
  std::map<std::uint64_t, std::uint64_t> out;
  for (std::size_t i = 0; i < in.bytes.size(); ++i) {
    out[(i % 3) * 256 + in.bytes[i]]++;
  }
  return out;
}

LrFit lr_fit_from_moments(std::int64_t sx, std::int64_t sy, std::int64_t sxx,
                          std::int64_t sxy, std::size_t n) {
  if (n == 0) throw Error("lr_fit_from_moments: no points");
  const double dn = static_cast<double>(n);
  const double dsx = static_cast<double>(sx);
  const double dsy = static_cast<double>(sy);
  const double denom = dn * static_cast<double>(sxx) - dsx * dsx;
  if (denom == 0.0) throw Error("lr_fit_from_moments: degenerate x values");
  LrFit fit;
  fit.slope = (dn * static_cast<double>(sxy) - dsx * dsy) / denom;
  fit.intercept = (dsy - fit.slope * dsx) / dn;
  return fit;
}

std::map<std::uint64_t, std::int64_t> lr_reference(const LrInput& in) {
  std::map<std::uint64_t, std::int64_t> out;
  for (std::uint64_t k = 0; k < kLrKeys; ++k) out[k] = 0;
  for (const LrPoint& p : in.points) {
    const std::int64_t x = p.x;
    const std::int64_t y = p.y;
    out[kLrSx] += x;
    out[kLrSy] += y;
    out[kLrSxx] += x * x;
    out[kLrSyy] += y * y;
    out[kLrSxy] += x * y;
  }
  if (in.points.empty()) out.clear();
  return out;
}

std::vector<KmPoint> km_next_centroids(
    const std::vector<std::pair<std::uint64_t, KmAccum>>& merged,
    const std::vector<KmPoint>& previous) {
  std::vector<KmPoint> next = previous;
  for (const auto& [cluster, acc] : merged) {
    if (cluster >= next.size() || acc.n == 0) continue;
    for (std::size_t d = 0; d < kKmDim; ++d) {
      next[cluster].coord[d] =
          static_cast<float>(acc.sum[d] / static_cast<double>(acc.n));
    }
  }
  return next;
}

std::map<std::uint64_t, KmAccum> km_reference(const KmInput& in) {
  std::map<std::uint64_t, KmAccum> out;
  for (const KmPoint& p : in.points) {
    std::size_t best = 0;
    float best_d2 = std::numeric_limits<float>::max();
    for (std::size_t k = 0; k < in.centroids.size(); ++k) {
      float d2 = 0.0f;
      for (std::size_t d = 0; d < kKmDim; ++d) {
        const float diff = p.coord[d] - in.centroids[k].coord[d];
        d2 += diff * diff;
      }
      if (d2 < best_d2) {
        best_d2 = d2;
        best = k;
      }
    }
    KmAccum& acc = out[best];
    for (std::size_t d = 0; d < kKmDim; ++d) acc.sum[d] += p.coord[d];
    acc.n += 1;
  }
  return out;
}

std::vector<double> pca_row_means(const Matrix& m) {
  std::vector<double> means(m.rows, 0.0);
  if (m.cols == 0) return means;
  for (std::size_t r = 0; r < m.rows; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < m.cols; ++c) sum += m.at(r, c);
    means[r] = sum / static_cast<double>(m.cols);
  }
  return means;
}

std::map<std::uint64_t, double> pca_cov_reference(const PcaInput& in) {
  std::map<std::uint64_t, double> out;
  const Matrix& m = in.matrix;
  for (std::size_t i = 0; i < m.rows; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = 0.0;
      for (std::size_t c = 0; c < m.cols; ++c) {
        sum += (m.at(i, c) - in.row_means[i]) * (m.at(j, c) - in.row_means[j]);
      }
      out[pca_pack(i, j)] = sum;
    }
  }
  return out;
}

std::map<std::uint64_t, std::uint64_t> string_match_reference(
    const SmInput& in) {
  std::map<std::uint64_t, std::uint64_t> out;
  const std::string_view text(in.text.text);
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && is_word_separator(text[pos])) ++pos;
    std::size_t end = pos;
    while (end < text.size() && !is_word_separator(text[end])) ++end;
    if (end > pos) {
      const std::string_view word = text.substr(pos, end - pos);
      for (std::size_t p = 0; p < in.patterns.size(); ++p) {
        if (word == in.patterns[p]) {
          out[p]++;
          break;
        }
      }
    }
    pos = end;
  }
  return out;
}

Matrix mm_reference(const MmInput& in) {
  if (in.a.cols != in.b.rows) {
    throw Error("mm_reference: inner dimensions do not match");
  }
  Matrix c;
  c.rows = in.a.rows;
  c.cols = in.b.cols;
  c.data.assign(c.rows * c.cols, 0.0);
  for (std::size_t i = 0; i < in.a.rows; ++i) {
    for (std::size_t k = 0; k < in.a.cols; ++k) {
      const double aik = in.a.at(i, k);
      for (std::size_t j = 0; j < in.b.cols; ++j) {
        c.at(i, j) += aik * in.b.at(k, j);
      }
    }
  }
  return c;
}

}  // namespace ramr::apps
