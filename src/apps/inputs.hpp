// Deterministic input generators for the six suite applications.
//
// The paper's inputs are synthetic/benchmark files of the sizes in Table I;
// we generate equivalents: zipf-distributed text for Word Count, uniform
// pixel bytes for Histogram, clustered points for KMeans, uniform points
// for Linear Regression, and dense matrices for PCA / Matrix Multiply. All
// generators are pure functions of (size, seed).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ramr::apps {

// ---- Word Count ------------------------------------------------------------

// Space-separated words drawn from a `vocabulary`-word list with a Zipf-like
// (1/rank) frequency distribution — natural text is Zipfian, and a skewed
// key histogram is what makes WC's combiners earn their keep.
std::string make_text(std::size_t approx_bytes, std::size_t vocabulary,
                      std::uint64_t seed);

// ---- Histogram ---------------------------------------------------------------

// Interleaved RGB pixel bytes (3 channels). Values are drawn from a mixture
// of a uniform floor and a few gaussian-ish humps so the 768-bin histogram
// is non-trivial.
std::vector<std::uint8_t> make_pixels(std::size_t bytes, std::uint64_t seed);

// ---- KMeans -------------------------------------------------------------------

inline constexpr std::size_t kKmDim = 3;

struct KmPoint {
  std::array<float, kKmDim> coord;
};

// `num_points` points grouped around `num_clusters` well-separated centres.
std::vector<KmPoint> make_points(std::size_t num_points,
                                 std::size_t num_clusters, std::uint64_t seed);

// Initial centroids: the first `num_clusters` distinct generated points
// perturbed — deterministic, reasonable seeding for the iterative solver.
std::vector<KmPoint> initial_centroids(const std::vector<KmPoint>& points,
                                       std::size_t num_clusters);

// ---- Linear Regression ----------------------------------------------------------

struct LrPoint {
  std::int16_t x;
  std::int16_t y;
};

// Points around the line y = a*x + b with noise; 4 bytes per point, so the
// paper's "N MB" inputs map to N*1024*1024/4 points.
std::vector<LrPoint> make_lr_points(std::size_t num_points,
                                    std::uint64_t seed);

// ---- matrices (PCA, Matrix Multiply) -----------------------------------------------

// Row-major dense matrix of doubles in [-1, 1).
struct Matrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> data;

  double at(std::size_t r, std::size_t c) const { return data[r * cols + c]; }
  double& at(std::size_t r, std::size_t c) { return data[r * cols + c]; }
};

Matrix make_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed);

}  // namespace ramr::apps
