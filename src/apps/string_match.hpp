// String Match (SM) — extension app from the original Phoenix suite
// (Ranger et al., HPCA'07). Not part of the paper's six evaluation
// test-cases (Table I), but included because the original suite ships it
// and it exercises a distinct shape: a small fixed key space (one key per
// search pattern) discovered by scanning, with a workload profile similar
// to the paper's "light" apps.
//
// Counts, for each of a fixed set of patterns, how many whitespace-
// delimited words of the text match it exactly. Keys are pattern indices,
// so the default container is a fixed array sized to the pattern count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "apps/flavor.hpp"
#include "apps/wordcount.hpp"  // TextInput
#include "containers/combiners.hpp"
#include "containers/fixed_array_container.hpp"
#include "containers/hash_container.hpp"

namespace ramr::apps {

struct SmInput {
  TextInput text;
  std::vector<std::string> patterns;
};

template <ContainerFlavor F>
struct StringMatchApp {
  static constexpr const char* kName = "sm";

  using input_type = SmInput;
  using container_type = std::conditional_t<
      F == ContainerFlavor::kDefault,
      containers::FixedArrayContainer<std::uint64_t,
                                      containers::CountCombiner>,
      containers::FixedHashContainer<std::uint64_t, std::uint64_t,
                                     containers::CountCombiner>>;

  std::size_t num_patterns = 0;  // must match input.patterns.size()

  std::size_t num_splits(const input_type& in) const {
    if (in.text.text.empty()) return 0;
    return (in.text.text.size() + in.text.split_bytes - 1) /
           in.text.split_bytes;
  }

  container_type make_container() const {
    return container_type(num_patterns == 0 ? 1 : num_patterns);
  }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    // Same word-ownership rule as Word Count: a split owns the words that
    // start inside its raw byte range.
    const std::string_view text(in.text.text);
    std::size_t begin = split * in.text.split_bytes;
    const std::size_t end =
        std::min(begin + in.text.split_bytes, text.size());
    const simd::Active& sk = simd::active();
    if (sk.mode == simd::Mode::kOff) {
      // Historical inline loop (RAMR_SIMD unset/off).
      if (begin != 0 && !is_word_separator(text[begin - 1])) {
        while (begin < end && !is_word_separator(text[begin])) ++begin;
      }
      std::size_t pos = begin;
      for (;;) {
        while (pos < end && is_word_separator(text[pos])) ++pos;
        if (pos >= end) break;
        std::size_t word_end = pos;
        while (word_end < text.size() && !is_word_separator(text[word_end])) {
          ++word_end;
        }
        const std::string_view word = text.substr(pos, word_end - pos);
        for (std::size_t p = 0; p < in.patterns.size(); ++p) {
          if (word == in.patterns[p]) {
            emit(static_cast<std::uint64_t>(p), std::uint64_t{1});
            break;
          }
        }
        pos = word_end;
      }
      return;
    }
    const simd::Kernels& k = *sk.kernels;
    const char* data = text.data();
    if (begin != 0 && !is_word_separator(text[begin - 1])) {
      begin = k.find_separator(data, begin, end);
    }
    // Single-pattern fast path: broadcast-compare for the pattern's first
    // byte, then verify word start, word end, and the remaining bytes —
    // the scan never tokenizes words that cannot match. Only taken for a
    // pattern that is itself a word: one containing a separator byte can
    // never equal a tokenized word, which the general path gets right.
    if (in.patterns.size() == 1 && !in.patterns[0].empty() &&
        std::none_of(in.patterns[0].begin(), in.patterns[0].end(),
                     [](char c) { return is_word_separator(c); })) {
      const std::string& pat = in.patterns[0];
      std::size_t pos = begin;
      while (pos < end) {
        const std::size_t c = k.find_byte(data, pos, end, pat[0]);
        if (c >= end) break;
        if (c == 0 || is_word_separator(text[c - 1])) {
          const std::size_t we = c + pat.size();
          if (we <= text.size() &&
              (we == text.size() || is_word_separator(text[we])) &&
              k.range_equal(data + c + 1, pat.data() + 1, pat.size() - 1)) {
            emit(std::uint64_t{0}, std::uint64_t{1});
            pos = we;
            continue;
          }
        }
        pos = c + 1;
      }
      return;
    }
    // General path: kernel-table tokenization + first-match compare, same
    // semantics as the inline loop (including duplicate-pattern behaviour).
    std::size_t pos = begin;
    for (;;) {
      pos = k.skip_separators(data, pos, end);
      if (pos >= end) break;
      const std::size_t word_end = k.find_separator(data, pos, text.size());
      const std::string_view word = text.substr(pos, word_end - pos);
      for (std::size_t p = 0; p < in.patterns.size(); ++p) {
        if (word.size() == in.patterns[p].size() &&
            k.range_equal(word.data(), in.patterns[p].data(), word.size())) {
          emit(static_cast<std::uint64_t>(p), std::uint64_t{1});
          break;
        }
      }
      pos = word_end;
    }
  }
};

// Serial reference: pattern index -> match count (only matched patterns).
std::map<std::uint64_t, std::uint64_t> string_match_reference(
    const SmInput& in);

}  // namespace ramr::apps
