// Global-container variants of the suite apps that fit the MRPhi design
// (atomic fetch-ops over an a-priori key range): Histogram and Linear
// Regression. They delegate their map bodies to the canonical apps, so the
// three runtimes (Phoenix++, RAMR, MRPhi-style) run byte-identical map
// code over byte-identical inputs.
#pragma once

#include "apps/histogram.hpp"
#include "apps/linear_regression.hpp"
#include "containers/atomic_array_container.hpp"

namespace ramr::apps {

struct HistogramGlobalApp {
  using input_type = PixelInput;
  using container_type =
      containers::AtomicArrayContainer<std::uint64_t,
                                       containers::AtomicOp::kAdd>;

  HistogramApp<ContainerFlavor::kDefault> base;

  std::size_t num_splits(const input_type& in) const {
    return base.num_splits(in);
  }
  container_type make_global_container() const {
    return container_type(kHistogramBins);
  }
  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    base.map(in, split, emit);
  }
};

struct LinearRegressionGlobalApp {
  using input_type = LrInput;
  using container_type =
      containers::AtomicArrayContainer<std::int64_t,
                                       containers::AtomicOp::kAdd>;

  LinearRegressionApp<ContainerFlavor::kDefault> base;

  std::size_t num_splits(const input_type& in) const {
    return base.num_splits(in);
  }
  container_type make_global_container() const {
    return container_type(kLrKeys);
  }
  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    base.map(in, split, emit);
  }
};

}  // namespace ramr::apps
