#include "apps/inputs.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ramr::apps {

namespace {

// Zipf(1.0) sampler over ranks [0, n): inverse-CDF over the harmonic sums,
// precomputed once per generator call.
class ZipfSampler {
 public:
  explicit ZipfSampler(std::size_t n) : cdf_(n) {
    double sum = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      sum += 1.0 / static_cast<double>(r + 1);
      cdf_[r] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }

  std::size_t sample(double u) const {
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

// Deterministic pseudo-word for a vocabulary rank: 3-9 lowercase letters.
std::string word_for_rank(std::size_t rank) {
  SplitMix64 sm(0x5eedull * (rank + 1));
  const std::size_t len = 3 + sm.next() % 7;
  std::string w(len, 'a');
  for (char& c : w) c = static_cast<char>('a' + sm.next() % 26);
  return w;
}

}  // namespace

std::string make_text(std::size_t approx_bytes, std::size_t vocabulary,
                      std::uint64_t seed) {
  if (vocabulary == 0) throw Error("make_text: vocabulary must be >= 1");
  std::vector<std::string> words(vocabulary);
  for (std::size_t r = 0; r < vocabulary; ++r) words[r] = word_for_rank(r);
  const ZipfSampler zipf(vocabulary);
  Xoshiro256 rng(seed);
  std::string text;
  text.reserve(approx_bytes + 16);
  while (text.size() < approx_bytes) {
    const std::string& w = words[zipf.sample(rng.uniform())];
    text += w;
    text += ' ';
  }
  if (!text.empty()) text.pop_back();  // drop the trailing space
  return text;
}

std::vector<std::uint8_t> make_pixels(std::size_t bytes, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> px(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    // 70% from three humps (sums of uniforms approximate gaussians),
    // 30% uniform floor.
    if (rng.uniform() < 0.7) {
      const std::uint64_t centre = 48 + 80 * rng.below(3);
      const std::int64_t jitter = static_cast<std::int64_t>(rng.below(33)) +
                                  static_cast<std::int64_t>(rng.below(33)) -
                                  32;
      const std::int64_t v =
          static_cast<std::int64_t>(centre) + jitter;
      px[i] = static_cast<std::uint8_t>(std::clamp<std::int64_t>(v, 0, 255));
    } else {
      px[i] = static_cast<std::uint8_t>(rng.below(256));
    }
  }
  return px;
}

std::vector<KmPoint> make_points(std::size_t num_points,
                                 std::size_t num_clusters,
                                 std::uint64_t seed) {
  if (num_clusters == 0) throw Error("make_points: need >= 1 cluster");
  Xoshiro256 rng(seed);
  // Well-separated cluster centres in [0, 100)^3.
  std::vector<KmPoint> centres(num_clusters);
  for (auto& c : centres) {
    for (auto& x : c.coord) x = static_cast<float>(rng.uniform(0.0, 100.0));
  }
  std::vector<KmPoint> points(num_points);
  for (auto& p : points) {
    const KmPoint& c = centres[rng.below(num_clusters)];
    for (std::size_t d = 0; d < kKmDim; ++d) {
      p.coord[d] = c.coord[d] + static_cast<float>(rng.uniform(-3.0, 3.0));
    }
  }
  return points;
}

std::vector<KmPoint> initial_centroids(const std::vector<KmPoint>& points,
                                       std::size_t num_clusters) {
  if (points.size() < num_clusters) {
    throw Error("initial_centroids: fewer points than clusters");
  }
  std::vector<KmPoint> centroids(num_clusters);
  // Evenly strided sample, nudged so duplicated points stay distinct.
  const std::size_t stride = points.size() / num_clusters;
  for (std::size_t k = 0; k < num_clusters; ++k) {
    centroids[k] = points[k * stride];
    centroids[k].coord[0] += 1e-3f * static_cast<float>(k);
  }
  return centroids;
}

std::vector<LrPoint> make_lr_points(std::size_t num_points,
                                    std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<LrPoint> points(num_points);
  // y ~ 0.8 x + 12 + noise, x in [-1000, 1000).
  for (auto& p : points) {
    const double x = rng.uniform(-1000.0, 1000.0);
    const double y = 0.8 * x + 12.0 + rng.uniform(-40.0, 40.0);
    p.x = static_cast<std::int16_t>(x);
    p.y = static_cast<std::int16_t>(y);
  }
  return points;
}

Matrix make_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m;
  m.rows = rows;
  m.cols = cols;
  m.data.resize(rows * cols);
  Xoshiro256 rng(seed);
  for (double& v : m.data) v = rng.uniform(-1.0, 1.0);
  return m;
}

}  // namespace ramr::apps
