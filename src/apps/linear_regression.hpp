// Linear Regression (LR) — AI-domain suite app.
//
// Ordinary least squares over 2-D points: the map phase accumulates the five
// moment sums (SX, SY, SXX, SYY, SXY) from which slope/intercept follow in
// closed form. Keys are the five fixed moment ids, so the default container
// is a 5-slot fixed array; the hash flavor is a fixed-size hash table.
//
// LR is the paper's second "light workload" app (five trivial emissions per
// 4-byte point): like HG it loses under RAMR with default containers
// (~3.8x on Haswell) — the queue cost dominates its tiny per-element work.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <type_traits>
#include <vector>

#include "apps/flavor.hpp"
#include "apps/inputs.hpp"
#include "containers/combiners.hpp"
#include "containers/fixed_array_container.hpp"
#include "containers/hash_container.hpp"
#include "simd/kernels.hpp"

namespace ramr::apps {

// Moment ids (the MR key space).
enum LrKey : std::uint64_t {
  kLrSx = 0,
  kLrSy = 1,
  kLrSxx = 2,
  kLrSyy = 3,
  kLrSxy = 4,
};
inline constexpr std::size_t kLrKeys = 5;

struct LrInput {
  std::vector<LrPoint> points;
  std::size_t split_points = 16 * 1024;
};

template <ContainerFlavor F>
struct LinearRegressionApp {
  static constexpr const char* kName = "lr";

  using input_type = LrInput;
  using container_type = std::conditional_t<
      F == ContainerFlavor::kDefault,
      containers::FixedArrayContainer<std::int64_t,
                                      containers::SumCombiner<std::int64_t>>,
      containers::FixedHashContainer<std::uint64_t, std::int64_t,
                                     containers::SumCombiner<std::int64_t>>>;

  std::size_t num_splits(const input_type& in) const {
    if (in.points.empty()) return 0;
    return (in.points.size() + in.split_points - 1) / in.split_points;
  }

  container_type make_container() const { return container_type(kLrKeys); }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    const std::size_t begin = split * in.split_points;
    const std::size_t end =
        std::min(begin + in.split_points, in.points.size());
    const simd::Active& sk = simd::active();
    if (sk.mode == simd::Mode::kOff) {
      // Historical five-emissions-per-point loop (RAMR_SIMD unset/off).
      for (std::size_t i = begin; i < end; ++i) {
        const std::int64_t x = in.points[i].x;
        const std::int64_t y = in.points[i].y;
        emit(kLrSx, x);
        emit(kLrSy, y);
        emit(kLrSxx, x * x);
        emit(kLrSyy, y * y);
        emit(kLrSxy, x * y);
      }
      return;
    }
    // Kernel path: multi-accumulator moment reduction over the split's
    // interleaved (x, y) pairs, then five emissions total. Integer sums
    // are exact and SumCombiner adds them, so the output is identical to
    // the per-point emission.
    static_assert(sizeof(LrPoint) == 2 * sizeof(std::int16_t));
    std::int64_t m[5] = {};
    sk.kernels->lr_moments(
        reinterpret_cast<const std::int16_t*>(in.points.data() + begin),
        end - begin, m);
    if (end > begin) {
      emit(kLrSx, m[0]);
      emit(kLrSy, m[1]);
      emit(kLrSxx, m[2]);
      emit(kLrSyy, m[3]);
      emit(kLrSxy, m[4]);
    }
  }
};

// Closed-form fit from the five moment sums.
struct LrFit {
  double slope = 0.0;
  double intercept = 0.0;
};

LrFit lr_fit_from_moments(std::int64_t sx, std::int64_t sy, std::int64_t sxx,
                          std::int64_t sxy, std::size_t n);

// Serial reference: the five moment sums keyed by LrKey.
std::map<std::uint64_t, std::int64_t> lr_reference(const LrInput& in);

}  // namespace ramr::apps
