// Matrix Multiply (MM) — scientific suite app, "adapted to utilize the
// Map/Reduce semantics" (paper Table I footnote).
//
// C = A x B. Each map task owns a chunk of A's rows and emits one (i*N+j,
// dot product) pair per produced C element. The key range [0, rows_a *
// cols_b) is known a priori, so the default container is a fixed array the
// size of the whole output matrix — matching the paper's Sec. IV-E
// observation that with the array container "each worker thread allocates
// an array of sufficient capacity to store every element of the output
// array. However, only a small part of it is used" (each mapper computes a
// limited key range), which is exactly why MM's stalls *drop* when
// switching to the right-sized hash container. The hash flavor is a
// *regular* hash table.
//
// MM is the paper's strongest RAMR case with hash containers (2.46x on
// Haswell): the dot products are CPU-intensive while storing rows of C is
// memory-intensive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <type_traits>
#include <vector>

#include "apps/flavor.hpp"
#include "apps/inputs.hpp"
#include "containers/combiners.hpp"
#include "containers/fixed_array_container.hpp"
#include "containers/hash_container.hpp"

namespace ramr::apps {

struct MmInput {
  Matrix a;  // rows_a x inner
  Matrix b;  // inner x cols_b
  std::size_t split_rows = 8;
};

template <ContainerFlavor F>
struct MatrixMultiplyApp {
  static constexpr const char* kName = "mm";

  using input_type = MmInput;
  using container_type = std::conditional_t<
      F == ContainerFlavor::kDefault,
      containers::FixedArrayContainer<double, containers::SumCombiner<double>>,
      containers::HashContainer<std::uint64_t, double,
                                containers::SumCombiner<double>>>;

  std::size_t rows_a = 0;  // must match input shapes (container sizing)
  std::size_t cols_b = 0;

  std::size_t num_splits(const input_type& in) const {
    if (in.a.rows == 0) return 0;
    return (in.a.rows + in.split_rows - 1) / in.split_rows;
  }

  container_type make_container() const {
    const std::size_t keys = rows_a * cols_b;
    return container_type(keys == 0 ? 1 : keys);
  }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    const std::size_t r0 = split * in.split_rows;
    const std::size_t r1 = std::min(r0 + in.split_rows, in.a.rows);
    for (std::size_t i = r0; i < r1; ++i) {
      for (std::size_t j = 0; j < in.b.cols; ++j) {
        double sum = 0.0;
        for (std::size_t k = 0; k < in.a.cols; ++k) {
          sum += in.a.at(i, k) * in.b.at(k, j);
        }
        emit(static_cast<std::uint64_t>(i) * in.b.cols + j, sum);
      }
    }
  }
};

// Serial reference: the product as a Matrix.
Matrix mm_reference(const MmInput& in);

}  // namespace ramr::apps
