// Container flavor selection for the suite apps.
//
// The paper evaluates each application twice: once with its *default*
// container (thread-local fixed array — the key range is known a priori —
// except Word Count, which defaults to a hash table) and once with a
// memory-stressing *hash* flavor (fixed-size hash tables for HG, KM, LR,
// WC; regular, resizable hash tables for MM and PCA) — Figs. 8-10.
#pragma once

namespace ramr::apps {

enum class ContainerFlavor {
  kDefault,  // fixed array (WC: regular hash)
  kHash,     // fixed-size hash (MM/PCA: regular hash)
};

inline const char* to_string(ContainerFlavor f) {
  return f == ContainerFlavor::kDefault ? "default" : "hash";
}

}  // namespace ramr::apps
