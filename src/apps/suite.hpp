// The benchmark suite registry: the six applications and the Table I input
// sizes (Small/Medium/Large x Haswell/Xeon Phi).
//
// Benches regenerate the paper's tables from this registry; native runs can
// divide the paper sizes by a scale factor (RAMR_BENCH_SCALE) so the same
// harness finishes quickly on small machines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/histogram.hpp"
#include "apps/inputs.hpp"
#include "apps/kmeans.hpp"
#include "apps/linear_regression.hpp"
#include "apps/matmul.hpp"
#include "apps/pca.hpp"
#include "apps/wordcount.hpp"

namespace ramr::apps {

enum class AppId {
  kWordCount,
  kKMeans,
  kHistogram,
  kPca,
  kMatrixMultiply,
  kLinearRegression,
};

inline constexpr AppId kAllApps[] = {
    AppId::kWordCount, AppId::kKMeans,         AppId::kHistogram,
    AppId::kPca,       AppId::kMatrixMultiply, AppId::kLinearRegression,
};

enum class SizeClass { kSmall, kMedium, kLarge };
inline constexpr SizeClass kAllSizes[] = {SizeClass::kSmall,
                                          SizeClass::kMedium,
                                          SizeClass::kLarge};

enum class PlatformId { kHaswell, kXeonPhi };
inline constexpr PlatformId kAllPlatforms[] = {PlatformId::kHaswell,
                                               PlatformId::kXeonPhi};

const char* app_name(AppId app);        // "wc", "km", ...
const char* app_full_name(AppId app);   // "Word Count", ...
const char* size_name(SizeClass size);  // "small", ...
const char* platform_name(PlatformId platform);  // "HWL" / "PHI"

// One Table I cell. `primary` is bytes (WC/HG/LR), points (KM) or matrix
// rows (PCA, MM); `secondary` is the second matrix dimension (MM) or zero.
struct InputSize {
  std::uint64_t primary = 0;
  std::uint64_t secondary = 0;

  std::string describe(AppId app) const;  // e.g. "400MB", "400K", "2Kx2K"
};

// Table I lookup.
InputSize table1_input(AppId app, PlatformId platform, SizeClass size);

// Default environment knob for scaling native runs (RAMR_BENCH_SCALE,
// default 1 = paper-size inputs). Returns a divisor >= 1.
std::uint64_t bench_scale_from_env();

// Generator bridges: build an input of `size` scaled down by `divisor`
// (>= 1), deterministically seeded per app.
TextInput make_wc_input(const InputSize& size, std::uint64_t divisor = 1);
PixelInput make_hg_input(const InputSize& size, std::uint64_t divisor = 1);
LrInput make_lr_input(const InputSize& size, std::uint64_t divisor = 1);
KmInput make_km_input(const InputSize& size, std::uint64_t divisor = 1,
                      std::size_t num_clusters = 16);
PcaInput make_pca_input(const InputSize& size, std::uint64_t divisor = 1);
MmInput make_mm_input(const InputSize& size, std::uint64_t divisor = 1);

}  // namespace ramr::apps
