// File input/output helpers: load real data into the app input types and
// export results — the glue a downstream user needs to point the runtime at
// actual files instead of the synthetic generators.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "apps/histogram.hpp"
#include "apps/wordcount.hpp"

namespace ramr::apps {

// Reads a whole file as text; whitespace other than ' ' is normalised to
// ' ' so the word-boundary scanners in WC/SM apply directly. Throws
// ramr::Error when the file cannot be read. Pass `fold_words = true` to
// additionally lower-case and strip punctuation (normalize_words) — what a
// grep-style user expects of real prose.
TextInput load_text_file(const std::string& path,
                         std::size_t split_bytes = 64 * 1024,
                         bool fold_words = false);

// Reads a whole file as raw bytes (e.g. an uncompressed image for HG).
PixelInput load_binary_file(const std::string& path,
                            std::size_t split_bytes = 64 * 1024);

// Writes key/value pairs as CSV ("key,value" per line). Requires
// operator<< for both types. Throws ramr::Error on I/O failure.
template <typename K, typename V>
void save_pairs_csv(const std::string& path,
                    const std::vector<std::pair<K, V>>& pairs) {
  std::ofstream out(path);
  if (!out) throw Error("save_pairs_csv: cannot open '" + path + "'");
  out << "key,value\n";
  for (const auto& [k, v] : pairs) {
    out << k << ',' << v << '\n';
  }
  if (!out) throw Error("save_pairs_csv: write to '" + path + "' failed");
}

}  // namespace ramr::apps
