// KMeans (KM) — AI-domain suite app.
//
// One MR job per Lloyd iteration: the map phase assigns each point to its
// nearest centroid and emits (cluster id, partial centroid accumulator);
// the combiner sums accumulators; dividing sums by counts yields the next
// centroids. The cluster-id key range is known a priori, so the default
// container is a fixed array of `k` accumulators; the hash flavor is a
// fixed-size hash table.
//
// KM is one of the paper's best RAMR candidates (Fig. 10: high IPB plus
// frequent stalls): distance computation is CPU-intensive while combining
// wide accumulators is memory-intensive — complementary phases.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <type_traits>
#include <vector>

#include "apps/flavor.hpp"
#include "apps/inputs.hpp"
#include "containers/combiners.hpp"
#include "containers/fixed_array_container.hpp"
#include "containers/hash_container.hpp"

namespace ramr::apps {

// Partial centroid: coordinate sums plus a point count.
struct KmAccum {
  std::array<double, kKmDim> sum{};
  std::uint64_t n = 0;

  void merge(const KmAccum& o) {
    for (std::size_t d = 0; d < kKmDim; ++d) sum[d] += o.sum[d];
    n += o.n;
  }
  bool operator==(const KmAccum&) const = default;
};

struct KmInput {
  std::vector<KmPoint> points;
  std::vector<KmPoint> centroids;
  std::size_t split_points = 4 * 1024;
};

template <ContainerFlavor F>
struct KMeansApp {
  static constexpr const char* kName = "km";

  using input_type = KmInput;
  using container_type = std::conditional_t<
      F == ContainerFlavor::kDefault,
      containers::FixedArrayContainer<KmAccum,
                                      containers::MergeCombiner<KmAccum>>,
      containers::FixedHashContainer<std::uint64_t, KmAccum,
                                     containers::MergeCombiner<KmAccum>>>;

  std::size_t num_clusters = 16;

  std::size_t num_splits(const input_type& in) const {
    if (in.points.empty()) return 0;
    return (in.points.size() + in.split_points - 1) / in.split_points;
  }

  container_type make_container() const {
    return container_type(num_clusters);
  }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    const std::size_t begin = split * in.split_points;
    const std::size_t end =
        std::min(begin + in.split_points, in.points.size());
    for (std::size_t i = begin; i < end; ++i) {
      const KmPoint& p = in.points[i];
      std::size_t best = 0;
      float best_d2 = std::numeric_limits<float>::max();
      for (std::size_t k = 0; k < in.centroids.size(); ++k) {
        float d2 = 0.0f;
        for (std::size_t d = 0; d < kKmDim; ++d) {
          const float diff = p.coord[d] - in.centroids[k].coord[d];
          d2 += diff * diff;
        }
        if (d2 < best_d2) {
          best_d2 = d2;
          best = k;
        }
      }
      KmAccum acc;
      for (std::size_t d = 0; d < kKmDim; ++d) acc.sum[d] = p.coord[d];
      acc.n = 1;
      emit(static_cast<std::uint64_t>(best), acc);
    }
  }
};

// Centroid update from the merged accumulators; clusters that captured no
// points keep their previous centroid.
std::vector<KmPoint> km_next_centroids(
    const std::vector<std::pair<std::uint64_t, KmAccum>>& merged,
    const std::vector<KmPoint>& previous);

// Serial reference for one iteration.
std::map<std::uint64_t, KmAccum> km_reference(const KmInput& in);

}  // namespace ramr::apps
