// Streaming (out-of-core) variants of the text/byte suite apps — the app
// side of the RAMR_IO subsystem (src/io/).
//
// The materialized apps scan one big normalized string; these scan bounded
// io::StreamInput windows instead, with two deliberate differences:
//
//   * keys are OWNED (std::string, not std::string_view): window memory
//     retires as soon as its tasks complete, so no emitted key may point
//     into it;
//   * normalization happens per character during the scan (classify) —
//     the window is read-only (mmap PROT_READ), so the in-place rewriting
//     load_text_file does is impossible. The classification is the same
//     function, so streaming and slurped runs produce identical pairs.
//
// The word-ownership rule is unchanged *within* a window (a split owns the
// words that start inside its byte range, finishing a word that crosses
// its end), and window edges need no rule at all: the chunk source snaps
// every cut to a record break, so a window always starts at a word start.
//
// The run_*_stream helpers at the bottom wire a whole streaming run:
// source → feeder → core::Runtime::run_stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "containers/combiners.hpp"
#include "containers/fixed_array_container.hpp"
#include "containers/hash_container.hpp"
#include "engine/result.hpp"
#include "io/io_config.hpp"
#include "io/stream_input.hpp"

namespace ramr::apps {

// Per-character normalization matching load_text_file: fold = false maps
// whitespace to ' ' and keeps everything else (case, punctuation) as word
// bytes; fold = true (normalize_words) lower-cases letters and maps every
// non-alphanumeric byte to ' '.
inline char stream_classify(char c, bool fold) {
  const unsigned char u = static_cast<unsigned char>(c);
  if (fold) {
    if (u >= 'A' && u <= 'Z') return static_cast<char>(u - 'A' + 'a');
    if ((u >= 'a' && u <= 'z') || (u >= '0' && u <= '9')) return c;
    return ' ';
  }
  if (c == '\n' || c == '\r' || c == '\t' || c == '\v' || c == '\f') {
    return ' ';
  }
  return c;
}

// Word Count over a stream. Container: regular hash (unknown key set),
// owned string keys.
struct StreamWordCountApp {
  static constexpr const char* kName = "wc-stream";

  using input_type = io::StreamInput;
  using container_type =
      containers::HashContainer<std::string, std::uint64_t,
                                containers::CountCombiner>;

  std::size_t max_distinct_words = 4096;
  bool fold_words = false;

  // Streaming runs never distribute a precomputed split count; this is
  // the AppSpec surface only (and the count so far, for diagnostics).
  std::size_t num_splits(const input_type& in) const {
    return in.published_splits();
  }

  container_type make_container() const {
    return container_type(max_distinct_words);
  }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    const io::StreamInput::SplitView v = in.split_view(split);
    const char* text = v.window_data;
    const auto cls = [&](std::size_t i) {
      return stream_classify(text[i], fold_words);
    };
    std::size_t begin = v.begin;
    const std::size_t end = v.end;
    // Word-ownership rule within the window; begin == 0 is a true word
    // start because the source snapped the window cut to a record break.
    if (begin != 0 && cls(begin - 1) != ' ') {
      while (begin < end && cls(begin) != ' ') ++begin;
    }
    std::string word;
    std::size_t pos = begin;
    for (;;) {
      while (pos < end && cls(pos) == ' ') ++pos;
      if (pos >= end) break;  // next word starts in the next split
      word.clear();
      while (pos < v.window_size) {
        const char c = cls(pos);
        if (c == ' ') break;
        word.push_back(c);
        ++pos;
      }
      emit(word, std::uint64_t{1});
    }
  }
};

// String Match over a stream: the pattern list rides along with the
// stream pointer (the engine sees one input_type value).
struct StreamSmInput {
  const io::StreamInput* stream = nullptr;
  std::vector<std::string> patterns;
};

struct StreamStringMatchApp {
  static constexpr const char* kName = "sm-stream";

  using input_type = StreamSmInput;
  using container_type =
      containers::FixedArrayContainer<std::uint64_t,
                                      containers::CountCombiner>;

  std::size_t num_patterns = 0;  // must match input.patterns.size()
  bool fold_words = false;

  std::size_t num_splits(const input_type& in) const {
    return in.stream->published_splits();
  }

  container_type make_container() const {
    return container_type(num_patterns == 0 ? 1 : num_patterns);
  }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    const io::StreamInput::SplitView v = in.stream->split_view(split);
    const char* text = v.window_data;
    const auto cls = [&](std::size_t i) {
      return stream_classify(text[i], fold_words);
    };
    std::size_t begin = v.begin;
    const std::size_t end = v.end;
    if (begin != 0 && cls(begin - 1) != ' ') {
      while (begin < end && cls(begin) != ' ') ++begin;
    }
    std::string word;
    std::size_t pos = begin;
    for (;;) {
      while (pos < end && cls(pos) == ' ') ++pos;
      if (pos >= end) break;
      word.clear();
      while (pos < v.window_size) {
        const char c = cls(pos);
        if (c == ' ') break;
        word.push_back(c);
        ++pos;
      }
      for (std::size_t p = 0; p < in.patterns.size(); ++p) {
        if (word == in.patterns[p]) {
          emit(static_cast<std::uint64_t>(p), std::uint64_t{1});
          break;
        }
      }
    }
  }
};

// Histogram over a byte stream. The channel of a byte is its *absolute*
// stream position mod 3 — SplitView::window_base keeps the rotation
// correct across windows (binary streams cut anywhere: the source gets a
// null RecordBreak).
struct StreamHistogramApp {
  static constexpr const char* kName = "hg-stream";

  using input_type = io::StreamInput;
  using container_type =
      containers::FixedArrayContainer<std::uint64_t,
                                      containers::CountCombiner>;

  std::size_t num_splits(const input_type& in) const {
    return in.published_splits();
  }

  container_type make_container() const {
    return container_type(3 * 256);
  }

  template <typename Emit>
  void map(const input_type& in, std::size_t split, Emit&& emit) const {
    const io::StreamInput::SplitView v = in.split_view(split);
    for (std::size_t i = v.begin; i < v.end; ++i) {
      const std::uint64_t channel = (v.window_base + i) % 3;
      emit(channel * 256 +
               static_cast<std::uint8_t>(v.window_data[i]),
           std::uint64_t{1});
    }
  }
};

// ---- whole-run helpers ------------------------------------------------------

// Knobs for one streaming invocation. `io.mode` must not be kOff
// (open_chunk_source throws ConfigError otherwise); IoConfig::from_env()
// resolves the RAMR_IO* knobs.
struct StreamOptions {
  RuntimeConfig config;               // engine knobs (resolved by Runtime)
  io::IoConfig io;                    // mode, window, depth
  std::size_t split_bytes = 64 * 1024;
  bool fold_words = false;
  std::size_t max_distinct_words = 64 * 1024;  // wc hash sizing
};

using StreamWordCountResult = engine::RunResult<std::string, std::uint64_t>;
using StreamMatchResult = engine::RunResult<std::uint64_t, std::uint64_t>;
using StreamHistogramResult = engine::RunResult<std::uint64_t, std::uint64_t>;

// Each helper builds source → StreamInput → StreamFeeder → Runtime and
// runs once on the host topology. Throws ramr::Error / ConfigError on
// unreadable input or bad RAMR_IO* knobs.
StreamWordCountResult run_wordcount_stream(const std::string& path,
                                           const StreamOptions& opts);
StreamMatchResult run_string_match_stream(
    const std::string& path, const std::vector<std::string>& patterns,
    const StreamOptions& opts);
StreamHistogramResult run_histogram_stream(const std::string& path,
                                           const StreamOptions& opts);

}  // namespace ramr::apps
