#include "telemetry/sampler.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ramr::telemetry {

Sampler::Sampler(std::chrono::microseconds period)
    : period_(period), epoch_(now()) {
  if (period.count() <= 0) {
    throw ConfigError("Sampler period must be positive");
  }
}

Sampler::~Sampler() { stop(); }

void Sampler::set_epoch(Clock::time_point epoch) {
  std::lock_guard lock(mutex_);
  epoch_ = epoch;
}

std::size_t Sampler::add_probe(std::string name, Probe probe) {
  std::lock_guard lock(mutex_);
  const std::size_t id = next_id_++;
  Slot slot;
  slot.id = id;
  slot.probe = std::move(probe);
  slot.data.name = std::move(name);
  slots_.push_back(std::move(slot));
  return id;
}

void Sampler::remove_probe(std::size_t id) {
  std::lock_guard lock(mutex_);
  for (Slot& slot : slots_) {
    if (slot.id == id) {
      slot.probe = nullptr;  // retire; keep the collected series
      return;
    }
  }
}

void Sampler::start() {
  std::lock_guard lock(mutex_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { loop(); });
}

void Sampler::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard lock(mutex_);
  running_ = false;
}

void Sampler::loop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    const double t = seconds_between(epoch_, now());
    for (Slot& slot : slots_) {
      if (!slot.probe) continue;
      if (slot.data.points.size() >= kMaxPointsPerProbe) {
        ++slot.data.dropped;
        continue;
      }
      slot.data.points.emplace_back(t, slot.probe());
    }
    cv_.wait_for(lock, period_, [this] { return stopping_; });
  }
}

std::vector<Sampler::Series> Sampler::series() const {
  std::lock_guard lock(mutex_);
  std::vector<Series> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) out.push_back(slot.data);
  return out;
}

}  // namespace ramr::telemetry
