#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>

namespace ramr::telemetry {

Counter::Counter(std::string name, std::size_t num_slots)
    : name_(std::move(name)),
      num_slots_(num_slots),
      slots_(std::make_unique<CacheAligned<std::atomic<std::uint64_t>>[]>(
          num_slots)) {}

std::uint64_t Counter::total() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < num_slots_; ++i) sum += slot_value(i);
  return sum;
}

Gauge::Gauge(std::string name, std::size_t num_slots)
    : name_(std::move(name)),
      num_slots_(num_slots),
      slots_(std::make_unique<CacheAligned<std::atomic<std::uint64_t>>[]>(
          num_slots)) {}

void Gauge::set(std::size_t slot, double value) {
  slots_[slot].value.store(std::bit_cast<std::uint64_t>(value),
                           std::memory_order_relaxed);
}

double Gauge::slot_value(std::size_t slot) const {
  return std::bit_cast<double>(
      slots_[slot].value.load(std::memory_order_relaxed));
}

double Gauge::max() const {
  double m = 0.0;
  for (std::size_t i = 0; i < num_slots_; ++i) {
    m = std::max(m, slot_value(i));
  }
  return m;
}

Histogram::Histogram(std::string name, std::size_t num_slots)
    : name_(std::move(name)),
      num_slots_(num_slots),
      slots_(std::make_unique<CacheAligned<
                 std::array<std::atomic<std::uint64_t>, kBuckets>>[]>(
          num_slots)) {}

void Histogram::record(std::size_t slot, std::uint64_t value) {
  const std::size_t bucket = static_cast<std::size_t>(std::bit_width(value));
  slots_[slot].value[std::min(bucket, kBuckets - 1)].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t Histogram::upper_bound(std::size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= kBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Smallest bucket whose cumulative count reaches q * total (rank >= 1).
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      return Histogram::upper_bound(i);
    }
  }
  return Histogram::upper_bound(buckets.size() - 1);
}

Counter& MetricRegistry::counter(const std::string& name) {
  for (auto& c : counters_) {
    if (c->name() == name) return *c;
  }
  counters_.push_back(std::make_unique<Counter>(name, num_slots_));
  return *counters_.back();
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  for (auto& g : gauges_) {
    if (g->name() == name) return *g;
  }
  gauges_.push_back(std::make_unique<Gauge>(name, num_slots_));
  return *gauges_.back();
}

Histogram& MetricRegistry::histogram(const std::string& name) {
  for (auto& h : histograms_) {
    if (h->name() == name) return *h;
  }
  histograms_.push_back(std::make_unique<Histogram>(name, num_slots_));
  return *histograms_.back();
}

MetricsSnapshot MetricRegistry::collect() const {
  MetricsSnapshot snap;
  for (const auto& c : counters_) {
    CounterSnapshot s;
    s.name = c->name();
    s.per_slot.reserve(c->num_slots());
    for (std::size_t i = 0; i < c->num_slots(); ++i) {
      s.per_slot.push_back(c->slot_value(i));
      s.total += s.per_slot.back();
    }
    snap.counters.push_back(std::move(s));
  }
  for (const auto& g : gauges_) {
    GaugeSnapshot s;
    s.name = g->name();
    s.per_slot.reserve(g->num_slots());
    for (std::size_t i = 0; i < g->num_slots(); ++i) {
      s.per_slot.push_back(g->slot_value(i));
    }
    s.max = g->max();
    snap.gauges.push_back(std::move(s));
  }
  for (const auto& h : histograms_) {
    HistogramSnapshot s;
    s.name = h->name();
    for (std::size_t slot = 0; slot < h->num_slots(); ++slot) {
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        const std::uint64_t n =
            h->slots_[slot].value[b].load(std::memory_order_relaxed);
        s.buckets[b] += n;
        s.count += n;
      }
    }
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

const CounterSnapshot* MetricsSnapshot::find_counter(
    const std::string& name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* MetricsSnapshot::find_gauge(
    const std::string& name) const {
  for (const GaugeSnapshot& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& now,
                               const MetricsSnapshot& before) {
  MetricsSnapshot delta = now;
  for (CounterSnapshot& c : delta.counters) {
    const CounterSnapshot* prev = before.find_counter(c.name);
    if (prev == nullptr) continue;
    // Monotonic per slot; guard against slot-count mismatches anyway.
    c.total -= prev->total <= c.total ? prev->total : c.total;
    const std::size_t n = std::min(c.per_slot.size(), prev->per_slot.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (prev->per_slot[i] <= c.per_slot[i]) {
        c.per_slot[i] -= prev->per_slot[i];
      }
    }
  }
  for (HistogramSnapshot& h : delta.histograms) {
    const HistogramSnapshot* prev = before.find_histogram(h.name);
    if (prev == nullptr) continue;
    h.count -= prev->count <= h.count ? prev->count : h.count;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (prev->buckets[b] <= h.buckets[b]) {
        h.buckets[b] -= prev->buckets[b];
      }
    }
  }
  return delta;
}

}  // namespace ramr::telemetry
