// MetricRegistry — named counters, gauges and histograms with per-thread
// single-writer slots.
//
// Same no-lock discipline as trace::Lane: metrics are created up front
// (during setup, before the instrumented region starts), each slot is then
// written by exactly one thread, and aggregation happens at collect time.
// Slots are cache-line aligned so two workers bumping adjacent counters
// never share a line, and the cells are relaxed atomics so the optional
// sampler thread (and collect() itself) may read concurrently with writers
// without a data race — per-slot monotonicity is all a reader needs.
//
// Cost when telemetry is disabled: zero — the engine holds a null
// EngineMetrics pointer and every instrumentation site is one pointer
// check. Cost when enabled: one relaxed fetch_add on a thread-private line
// per event, and the hot paths only write at batch/task granularity.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cacheline.hpp"

namespace ramr::telemetry {

// Monotonic per-slot counter (aggregate = sum over slots).
class Counter {
 public:
  Counter(std::string name, std::size_t num_slots);

  const std::string& name() const { return name_; }
  std::size_t num_slots() const { return num_slots_; }

  void add(std::size_t slot, std::uint64_t delta) {
    slots_[slot].value.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment(std::size_t slot) { add(slot, 1); }

  std::uint64_t slot_value(std::size_t slot) const {
    return slots_[slot].value.load(std::memory_order_relaxed);
  }
  std::uint64_t total() const;

 private:
  std::string name_;
  std::size_t num_slots_;
  std::unique_ptr<CacheAligned<std::atomic<std::uint64_t>>[]> slots_;
};

// Last-value-wins per-slot gauge (aggregate = max over slots). Values are
// doubles stored as bit patterns in an atomic word.
class Gauge {
 public:
  Gauge(std::string name, std::size_t num_slots);

  const std::string& name() const { return name_; }
  std::size_t num_slots() const { return num_slots_; }

  void set(std::size_t slot, double value);
  double slot_value(std::size_t slot) const;
  double max() const;

 private:
  std::string name_;
  std::size_t num_slots_;
  std::unique_ptr<CacheAligned<std::atomic<std::uint64_t>>[]> slots_;
};

// Power-of-two bucketed histogram of non-negative integer samples (batch
// sizes, occupancies, latencies in ticks). Bucket i counts samples whose
// bit width is i, i.e. bucket 0 holds the value 0, bucket i>=1 holds
// [2^(i-1), 2^i - 1]; upper_bound(i) reports the inclusive bucket ceiling
// that percentile estimation returns.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  Histogram(std::string name, std::size_t num_slots);

  const std::string& name() const { return name_; }
  std::size_t num_slots() const { return num_slots_; }

  void record(std::size_t slot, std::uint64_t value);

  static std::uint64_t upper_bound(std::size_t bucket);

 private:
  friend struct HistogramSnapshot;
  friend class MetricRegistry;
  std::string name_;
  std::size_t num_slots_;
  // Per-slot bucket array, one cache line per slot boundary: buckets of one
  // slot are written by one thread only.
  std::unique_ptr<CacheAligned<
      std::array<std::atomic<std::uint64_t>, kBuckets>>[]> slots_;
};

// ---- collect-time aggregation ---------------------------------------------

struct CounterSnapshot {
  std::string name;
  std::uint64_t total = 0;
  std::vector<std::uint64_t> per_slot;
};

struct GaugeSnapshot {
  std::string name;
  double max = 0.0;
  std::vector<double> per_slot;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;                          // total samples
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};

  // Inclusive upper bound of the bucket containing the q-quantile
  // (q in [0,1]); 0 when the histogram is empty.
  std::uint64_t quantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  // Lookup helpers (nullptr when the metric does not exist — callers built
  // on mid-phase snapshots must tolerate metrics that appear later).
  const CounterSnapshot* find_counter(const std::string& name) const;
  const GaugeSnapshot* find_gauge(const std::string& name) const;
  const HistogramSnapshot* find_histogram(const std::string& name) const;
};

// Windowed view between two collect() calls from the same registry: counter
// totals and histogram counts subtract (they are monotonic), gauges keep
// the `now` value (last-value-wins has no meaningful delta). Metrics absent
// from `before` pass through unchanged. The steady-state governor rates its
// observation windows with this.
MetricsSnapshot snapshot_delta(const MetricsSnapshot& now,
                               const MetricsSnapshot& before);

// The registry owns the metrics. Thread-safety contract mirrors
// trace::Recorder: counter()/gauge()/histogram() create-or-return during
// setup only (single-threaded); slots are then written concurrently;
// collect() may run at any time (it reads relaxed atomics).
class MetricRegistry {
 public:
  explicit MetricRegistry(std::size_t num_slots) : num_slots_(num_slots) {}

  std::size_t num_slots() const { return num_slots_; }

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot collect() const;

 private:
  std::size_t num_slots_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ramr::telemetry
