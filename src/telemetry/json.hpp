// Minimal streaming JSON writer for the telemetry exporters.
//
// The repo deliberately has no third-party JSON dependency; the two export
// formats we produce (Chrome trace-event arrays and the structured run
// report) only need objects, arrays, strings, bools and numbers. The writer
// tracks nesting and comma placement so exporter code reads linearly, and
// escapes strings per RFC 8259 (including control characters), so the
// output always parses with `python3 -m json.tool`.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ramr::telemetry {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  // Containers. begin_object/begin_array open an anonymous container (valid
  // as a top-level value or array element); the key_ variants open a named
  // member inside the enclosing object.
  void begin_object();
  void begin_object(std::string_view key);
  void end_object();
  void begin_array();
  void begin_array(std::string_view key);
  void end_array();

  // Scalar members of the enclosing object.
  void field(std::string_view key, std::string_view value);
  void field(std::string_view key, const char* value);
  void field(std::string_view key, double value);
  void field(std::string_view key, std::uint64_t value);
  void field(std::string_view key, std::int64_t value);
  void field(std::string_view key, bool value);

  // Scalar elements of the enclosing array.
  void element(std::string_view value);
  void element(double value);
  void element(std::uint64_t value);

  // Number formatting shared with field/element: shortest round-trippable
  // form, "0" for negative zero, and finite-only (NaN/inf become null, which
  // strict JSON parsers require).
  static std::string number(double value);

 private:
  void comma();
  void key(std::string_view k);
  void write_string(std::string_view s);

  std::ostream& os_;
  std::vector<bool> needs_comma_;  // one entry per open container
};

}  // namespace ramr::telemetry
