// Flight recorder: a bounded ring of recent service lifecycle events that
// turns into a post-mortem JSON document when something goes wrong.
//
// The scheduler appends one Event per lifecycle transition (submit, admit,
// lease, retry, degrade, hedge, shed, terminal — the same stream the
// service trace sees). The ring holds the last `capacity` events
// (RAMR_FLIGHT_EVENTS, default 256) and overwrites silently; `dropped`
// counts what aged out so a dump is honest about its horizon.
//
// dump_json writes schema "ramr-flight-v1": the trigger reason, the config
// summary stamped at startup, the retained events oldest-first, and an
// optional caller-provided "extra" section (the scheduler adds the failing
// job's identity and the latest metrics frames there). Triggers live in
// the scheduler: job abort, breaker-open, watchdog fire,
// shutdown-with-failures.
//
// Appends are mutex-guarded — every producer call site already holds or
// just released the scheduler lock, so contention is nil and the cost per
// event is one lock + a vector slot write.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace ramr::telemetry {

class JsonWriter;

class FlightRecorder {
 public:
  struct Event {
    double seconds = 0.0;   // since recorder construction
    std::uint64_t job = 0;  // 0 = not job-scoped (scheduler-level event)
    std::string kind;       // "submit" | "admit" | "retry" | ...
    std::string detail;     // free-form, e.g. the error text
  };

  explicit FlightRecorder(std::size_t capacity);

  // One-time context stamped into every dump (the resolved config line).
  void set_config(std::string summary);

  void record(std::uint64_t job, std::string kind, std::string detail);

  // Events currently retained, oldest first.
  std::vector<Event> events() const;
  std::uint64_t dropped() const;

  // Writes the post-mortem document. `extra` (optional) is invoked with
  // the writer inside an open "extra" object to append caller fields.
  void dump_json(std::ostream& out, const std::string& reason,
                 const std::function<void(JsonWriter&)>& extra = {}) const;

  // Best-effort file dump: failures are swallowed (the recorder fires on
  // paths that are already unwinding — it must never make things worse).
  void dump_file(const std::string& path, const std::string& reason,
                 const std::function<void(JsonWriter&)>& extra = {}) const;

 private:
  const std::size_t capacity_;
  const double epoch_seconds_;  // steady-clock origin for event stamps

  mutable std::mutex mutex_;
  std::vector<Event> ring_;     // wraps at capacity_
  std::size_t next_ = 0;        // ring_[next_ % capacity_] is written next
  std::uint64_t dropped_ = 0;
  std::string config_summary_;
};

}  // namespace ramr::telemetry
