#include "telemetry/metrics_export.hpp"

#include <sstream>

#include "telemetry/json.hpp"

namespace ramr::telemetry {

namespace {

// One Prometheus sample with HELP/TYPE headers (every metric here appears
// exactly once, so headers stay adjacent to their sample).
void prom_metric(std::ostream& os, const std::string& name,
                 const char* type, const char* help, double value) {
  os << "# HELP " << name << " " << help << "\n";
  os << "# TYPE " << name << " " << type << "\n";
  os << name << " " << JsonWriter::number(value) << "\n";
}

// Prometheus label values escape backslash, double-quote, and newline.
std::string prom_label_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

}  // namespace

int breaker_state_value(const std::string& breaker) {
  if (breaker == "open") return 1;
  if (breaker == "half-open") return 2;
  return 0;  // closed (and anything unknown degrades to closed)
}

std::string metrics_prometheus(const ServiceMetricsFrame& frame) {
  std::ostringstream os;
  prom_metric(os, "ramr_service_uptime_seconds", "gauge",
              "Seconds since the scheduler started.", frame.uptime_seconds);
  prom_metric(os, "ramr_service_queue_depth", "gauge",
              "Jobs waiting for admission.",
              static_cast<double>(frame.queue_depth));
  prom_metric(os, "ramr_service_running_jobs", "gauge",
              "Jobs currently holding a lease.",
              static_cast<double>(frame.running));
  prom_metric(os, "ramr_service_cores_total", "gauge",
              "Cores the lease registry manages.",
              static_cast<double>(frame.cores_total));
  prom_metric(os, "ramr_service_cores_leased", "gauge",
              "Cores currently leased to running jobs.",
              static_cast<double>(frame.cores_leased));
  prom_metric(os, "ramr_depot_built", "gauge",
              "Warm pool sets built since startup.",
              static_cast<double>(frame.depot_built));
  prom_metric(os, "ramr_depot_reused", "gauge",
              "Warm pool set reuses since startup.",
              static_cast<double>(frame.depot_reused));
  prom_metric(os, "ramr_depot_shelved", "gauge",
              "Idle warm pool sets on the depot shelf.",
              static_cast<double>(frame.depot_shelved));
  prom_metric(os, "ramr_depot_leased", "gauge",
              "Warm pool sets leased to running jobs.",
              static_cast<double>(frame.depot_leased));

  for (const auto& [name, value] : frame.counters) {
    const std::string full = "ramr_service_" + name + "_total";
    os << "# HELP " << full << " Scheduler lifecycle counter '" << name
       << "'.\n";
    os << "# TYPE " << full << " counter\n";
    os << full << " " << value << "\n";
  }

  if (!frame.apps.empty()) {
    os << "# HELP ramr_app_ewma_seconds "
          "EWMA of successful run times per app.\n";
    os << "# TYPE ramr_app_ewma_seconds gauge\n";
    for (const auto& app : frame.apps) {
      os << "ramr_app_ewma_seconds{app=\"" << prom_label_escape(app.name)
         << "\"} " << JsonWriter::number(app.ewma_seconds) << "\n";
    }
    os << "# HELP ramr_app_samples Successful runs folded into the EWMA.\n";
    os << "# TYPE ramr_app_samples gauge\n";
    for (const auto& app : frame.apps) {
      os << "ramr_app_samples{app=\"" << prom_label_escape(app.name)
         << "\"} " << app.samples << "\n";
    }
    os << "# HELP ramr_app_consecutive_failures "
          "Current final-failure streak per app.\n";
    os << "# TYPE ramr_app_consecutive_failures gauge\n";
    for (const auto& app : frame.apps) {
      os << "ramr_app_consecutive_failures{app=\""
         << prom_label_escape(app.name) << "\"} "
         << app.consecutive_failures << "\n";
    }
    os << "# HELP ramr_app_breaker_state "
          "Circuit breaker state per app (0=closed 1=open 2=half-open).\n";
    os << "# TYPE ramr_app_breaker_state gauge\n";
    for (const auto& app : frame.apps) {
      os << "ramr_app_breaker_state{app=\"" << prom_label_escape(app.name)
         << "\"} " << breaker_state_value(app.breaker) << "\n";
    }
  }
  return os.str();
}

std::string metrics_json(const ServiceMetricsFrame& frame) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "ramr-metrics-v1");
  w.field("uptime_seconds", frame.uptime_seconds);
  w.field("queue_depth", frame.queue_depth);
  w.field("running", frame.running);
  w.field("cores_total", frame.cores_total);
  w.field("cores_leased", frame.cores_leased);
  w.begin_object("depot");
  w.field("built", frame.depot_built);
  w.field("reused", frame.depot_reused);
  w.field("shelved", frame.depot_shelved);
  w.field("leased", frame.depot_leased);
  w.end_object();
  w.begin_object("counters");
  for (const auto& [name, value] : frame.counters) w.field(name, value);
  w.end_object();
  w.begin_array("apps");
  for (const auto& app : frame.apps) {
    w.begin_object();
    w.field("name", app.name);
    w.field("ewma_seconds", app.ewma_seconds);
    w.field("samples", app.samples);
    w.field("consecutive_failures", app.consecutive_failures);
    w.field("breaker", app.breaker);
    w.field("breaker_state",
            static_cast<std::uint64_t>(breaker_state_value(app.breaker)));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  return os.str();
}

}  // namespace ramr::telemetry
