#include "telemetry/session.hpp"

#include <algorithm>

#include "common/config.hpp"

namespace ramr::telemetry {

const char* to_string(PoolKind kind) {
  switch (kind) {
    case PoolKind::kMapper: return "mapper";
    case PoolKind::kCombiner: return "combiner";
  }
  return "?";
}

const char* to_string(CounterSource source) {
  switch (source) {
    case CounterSource::kNone: return "none";
    case CounterSource::kPmu: return "pmu";
    case CounterSource::kModel: return "model";
  }
  return "?";
}

Session::Session(SessionOptions options)
    : options_(options),
      registry_(std::max<std::size_t>(
          1, options.num_mappers + options.num_combiners)) {
  engine_metrics_.combiner_slot_base = options_.num_mappers;
  engine_metrics_.tasks_executed = &registry_.counter("tasks_executed");
  engine_metrics_.queue_pushes = &registry_.counter("queue_pushes");
  engine_metrics_.queue_failed_pushes =
      &registry_.counter("queue_failed_pushes");
  engine_metrics_.queue_batches = &registry_.counter("queue_batches");
  engine_metrics_.queue_push_batches =
      &registry_.counter("queue_push_batches");
  engine_metrics_.backoff_sleeps = &registry_.counter("backoff_sleeps");
  engine_metrics_.task_retries = &registry_.counter("task_retries");
  engine_metrics_.task_aborts = &registry_.counter("task_aborts");
  engine_metrics_.batch_sizes = &registry_.histogram("batch_sizes");
  engine_metrics_.queue_max_occupancy =
      &registry_.gauge("queue_max_occupancy");
  engine_metrics_.arena_high_water = &registry_.gauge("arena_high_water");
  if (options_.sample_interval_us > 0) {
    sampler_ = std::make_unique<Sampler>(
        std::chrono::microseconds(options_.sample_interval_us));
  }
}

Session::~Session() = default;

std::unique_ptr<Session> Session::from_config(const RuntimeConfig& config) {
  if (!config.telemetry) return nullptr;
  SessionOptions options;
  options.pmu = parse_pmu_mode(config.pmu_mode);
  options.sample_interval_us = config.sample_interval_us;
  options.num_mappers = std::max<std::size_t>(1, config.num_mappers);
  options.num_combiners = config.num_combiners;
  return std::make_unique<Session>(options);
}

void Session::attach_pools(const std::vector<std::int64_t>& mapper_tids,
                           const std::vector<std::int64_t>& combiner_tids) {
  if (options_.pmu == PmuMode::kOff) return;
  if (!pmu_probe().available) return;
  if (pool_pmu_[0] == nullptr && !mapper_tids.empty()) {
    pool_pmu_[0] = std::make_unique<PoolPmu>(mapper_tids);
  }
  if (pool_pmu_[1] == nullptr && !combiner_tids.empty()) {
    pool_pmu_[1] = std::make_unique<PoolPmu>(combiner_tids);
  }
}

void Session::begin_run(Clock::time_point trace_epoch) {
  if (sampler_ != nullptr) {
    sampler_->set_epoch(trace_epoch);
    sampler_->start();
  }
}

void Session::end_run() {
  if (sampler_ != nullptr) sampler_->stop();
}

void Session::begin_phase(Phase phase) {
  (void)phase;
  for (auto& pmu : pool_pmu_) {
    if (pmu != nullptr && pmu->measuring()) pmu->begin();
  }
}

void Session::end_phase(Phase phase, double seconds) {
  phase_seconds_[static_cast<std::size_t>(phase)] = seconds;
  for (std::size_t p = 0; p < kPoolKinds; ++p) {
    if (pool_pmu_[p] == nullptr || !pool_pmu_[p]->measuring()) continue;
    Cell& c = cells_[static_cast<std::size_t>(phase)][p];
    c.sample = pool_pmu_[p]->end();
    c.measured = c.sample.instructions_valid;
  }
}

void Session::set_modeled(Phase phase, PoolKind pool,
                          perf::Counters counters) {
  Cell& c = cell(phase, pool);
  c.model = counters;
  c.modeled = true;
}

PhaseCounters Session::phase_counters(Phase phase, PoolKind pool) const {
  const Cell& c = cell(phase, pool);
  PhaseCounters out;
  if (c.measured) {
    out.source = CounterSource::kPmu;
    out.counters.instructions = static_cast<double>(c.sample.instructions);
    out.counters.mem_stall_cycles =
        static_cast<double>(c.sample.mem_stall_cycles);
    out.counters.resource_stall_cycles =
        static_cast<double>(c.sample.resource_stall_cycles);
    out.counters.input_bytes = input_bytes_;
    out.cycles = c.sample.cycles;
    out.cycles_measured = c.sample.cycles_valid;
    out.mem_stall_measured = c.sample.mem_stall_valid;
    out.resource_stall_measured = c.sample.resource_stall_valid;
  } else if (c.modeled) {
    out.source = CounterSource::kModel;
    out.counters = c.model;
    if (out.counters.input_bytes <= 0.0) out.counters.input_bytes = input_bytes_;
  }
  return out;
}

bool Session::pmu_active() const {
  for (const auto& pmu : pool_pmu_) {
    if (pmu != nullptr && pmu->measuring()) return true;
  }
  return false;
}

std::vector<Sampler::Series> Session::series() const {
  if (sampler_ == nullptr) return {};
  return sampler_->series();
}

}  // namespace ramr::telemetry
