// Low-cadence sampling thread: periodic snapshots of cheap probes (ring
// occupancy, heartbeat counters) into named time-series.
//
// Probes are arbitrary double-returning callables; they must be safe to
// invoke from the sampler thread concurrently with the workers (in practice
// they read relaxed/acquire atomics: Ring::size(), Heartbeats counters).
// The probe list is mutex-protected — probes come and go with run phases
// while the thread keeps ticking — which is fine at sampling cadence
// (hundreds of microseconds and up); nothing on a worker hot path ever
// touches the sampler.
//
// Series are bounded (kMaxPointsPerProbe) so a sampler left running cannot
// blow memory; points beyond the cap are counted as dropped.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/timing.hpp"

namespace ramr::telemetry {

class Sampler {
 public:
  static constexpr std::size_t kMaxPointsPerProbe = 1 << 16;

  using Probe = std::function<double()>;

  struct Series {
    std::string name;
    std::vector<std::pair<double, double>> points;  // (seconds, value)
    std::size_t dropped = 0;
  };

  explicit Sampler(std::chrono::microseconds period);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  std::chrono::microseconds period() const { return period_; }

  // Timestamps are seconds since this epoch (defaults to construction
  // time); align it with trace::Recorder::epoch() so counter samples and
  // trace events share one timeline. Call before start().
  void set_epoch(Clock::time_point epoch);

  // Registers a probe; returns an id usable with remove_probe. Retired
  // probes keep their collected series. Thread-safe.
  std::size_t add_probe(std::string name, Probe probe);
  void remove_probe(std::size_t id);

  // RAII probe registration for scoped resources (rings, heartbeats).
  class ProbeHandle {
   public:
    ProbeHandle() = default;
    ProbeHandle(Sampler* sampler, std::size_t id)
        : sampler_(sampler), id_(id) {}
    ProbeHandle(ProbeHandle&& o) noexcept
        : sampler_(std::exchange(o.sampler_, nullptr)), id_(o.id_) {}
    ProbeHandle& operator=(ProbeHandle&& o) noexcept {
      release();
      sampler_ = std::exchange(o.sampler_, nullptr);
      id_ = o.id_;
      return *this;
    }
    ~ProbeHandle() { release(); }
    ProbeHandle(const ProbeHandle&) = delete;
    ProbeHandle& operator=(const ProbeHandle&) = delete;

   private:
    void release() {
      if (sampler_ != nullptr) sampler_->remove_probe(id_);
      sampler_ = nullptr;
    }
    Sampler* sampler_ = nullptr;
    std::size_t id_ = 0;
  };

  ProbeHandle scoped_probe(std::string name, Probe probe) {
    return ProbeHandle(this, add_probe(std::move(name), std::move(probe)));
  }

  // Starts/stops the sampling thread. start() is idempotent while running;
  // stop() joins the thread (series remain readable). The destructor stops.
  void start();
  void stop();

  // Snapshot of all series collected so far (active and retired probes).
  std::vector<Series> series() const;

 private:
  struct Slot {
    std::size_t id;
    Probe probe;  // empty after removal; series is kept
    Series data;
  };

  void loop();

  std::chrono::microseconds period_;
  Clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  std::size_t next_id_ = 0;
  bool running_ = false;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace ramr::telemetry
