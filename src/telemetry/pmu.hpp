// Hardware PMU backend: per-thread perf_event_open counters aggregated per
// pool, turning the paper's IPB/MSPI/RSPI from modeled into measured.
//
// The paper (Sec. IV-E) reads three hardware quantities over the
// map/combine phase: instructions, memory-stall cycles and resource-stall
// cycles. This backend opens per-thread counters (pid = worker tid,
// cpu = -1 so the count follows the thread across migrations) for:
//
//   instructions          PERF_COUNT_HW_INSTRUCTIONS
//   cycles                PERF_COUNT_HW_CPU_CYCLES
//   mem-stall cycles      PERF_COUNT_HW_STALLED_CYCLES_BACKEND — the
//                         generic backend-stall event; on the paper's
//                         workloads backend stalls are dominated by the
//                         L1/L2-miss stalls the paper's MSPI counts
//   resource-stall cycles raw RESOURCE_STALLS.ANY (event 0xa2, umask 0x01,
//                         x86 only) — full ROB / no RS entry / LSB full,
//                         exactly the paper's RSPI numerator
//
// Capability detection is per event and graceful: a kernel, container or
// perf_event_paranoid setting that refuses an event simply marks it
// unmeasured; if even the instructions counter cannot be opened the whole
// backend reports unavailable (with the errno-derived reason) and callers
// fall back to the analytic stall model (perf/stall_model.hpp), recording
// the active source in the run report. Nothing throws for a missing PMU.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ramr::telemetry {

// RAMR_PMU knob: auto = use hardware counters when available (default),
// off = never open counters (forces the model fallback), on = same as auto
// but the run report flags that hardware counting was explicitly requested.
enum class PmuMode { kAuto, kOn, kOff };

PmuMode parse_pmu_mode(const std::string& name);
std::string to_string(PmuMode mode);

// One capability probe per process (cached): can we open an instructions
// counter on ourselves?
struct PmuAvailability {
  bool available = false;
  std::string reason;  // human-readable cause when unavailable
};

const PmuAvailability& pmu_probe();

// Counter values for one pool over one phase, with per-event validity (an
// event that could not be opened on any thread reports false).
struct PmuSample {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t mem_stall_cycles = 0;
  std::uint64_t resource_stall_cycles = 0;
  bool instructions_valid = false;
  bool cycles_valid = false;
  bool mem_stall_valid = false;
  bool resource_stall_valid = false;
};

// Per-thread counters for every thread of one pool. Construction opens
// whatever events the kernel permits for each tid; begin() resets and
// enables, end() disables and accumulates the deltas. A pool where no
// thread yielded an instructions counter reports measuring() == false and
// begin()/end() are no-ops.
class PoolPmu {
 public:
  explicit PoolPmu(const std::vector<std::int64_t>& tids);
  ~PoolPmu();

  PoolPmu(const PoolPmu&) = delete;
  PoolPmu& operator=(const PoolPmu&) = delete;

  bool measuring() const;

  void begin();
  PmuSample end();  // delta since the matching begin()

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ramr::telemetry
