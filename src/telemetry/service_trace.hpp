// ServiceTrace — the process-wide stitched execution trace (RAMR_OBS=1).
//
// One service process runs many jobs, each of which may run several times
// (retries, hedges) with its own per-run trace::Recorder. This class
// stitches all of it into a single Chrome/Perfetto trace document:
//
//   pid 0          "scheduler": counter tracks (cores leased, queue depth)
//                  sampled by the scheduler's observability thread;
//   pid <job id>   one process per job, named "job <id>: <name>":
//                    tid 0   the lifecycle lane — "queued"/"run" spans plus
//                            instants for admit/retry/degrade/hedge/shed/
//                            terminal transitions;
//                    tid 1+  the per-run engine lanes (mapper/combiner/
//                            driver) copied out of each attempt's Recorder
//                            and shifted onto the shared timeline.
//
// Opening the file in Perfetto therefore shows every job as its own track
// group, with its queued/running spans on top of the worker-level task
// events of each attempt, and the core-lease timeline across all of them.
//
// All methods are mutex-guarded and cheap (a vector append); callers are
// the scheduler (under its own lock) and its sampler thread. Event and run
// storage is bounded; overflow increments drop counters that the written
// document reports in its "scheduler" process.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/timing.hpp"
#include "telemetry/export.hpp"
#include "trace/trace.hpp"

namespace ramr::telemetry {

class ServiceTrace {
 public:
  // Bounds: a soak of thousands of jobs stays around a few MB of JSON;
  // beyond them events/runs are counted as dropped, never reallocated.
  static constexpr std::size_t kMaxLifeEvents = 1u << 16;
  static constexpr std::size_t kMaxRuns = 256;

  ServiceTrace();

  // Labels the job's process track ("job <id>: <name>").
  void set_job_name(std::uint64_t job, const std::string& name);

  // Lifecycle spans on the job's tid-0 lane ("queued", "run", ...).
  void begin(std::uint64_t job, const std::string& span);
  void end(std::uint64_t job, const std::string& span);

  // Lifecycle instants (retry/degrade/hedge/shed/terminal/...); detail
  // lands in the event args.
  void instant(std::uint64_t job, const std::string& name,
               const std::string& detail = {});

  // Scheduler-level counter sample (pid 0 track), e.g. "cores_leased".
  void counter(const std::string& name, double value);

  // Copies one finished attempt's engine lanes under the job's process,
  // shifting the recorder's epoch onto the service timeline. Call after
  // the run completed (the recorder must be quiescent).
  void add_run(std::uint64_t job, const trace::Recorder& recorder);

  // The stitched Chrome trace document.
  void write_chrome(std::ostream& out) const;
  // Best-effort file write (failures swallowed — tracing must not fail a
  // shutdown path).
  void write_file(const std::string& path) const;

  std::uint64_t dropped_events() const;
  std::uint64_t dropped_runs() const;

 private:
  struct LifeEvent {
    double ts_us = 0.0;
    char ph = 'i';  // 'B' | 'E' | 'i'
    std::uint64_t job = 0;
    std::string name;
    std::string detail;  // instants only
  };
  struct Run {
    std::uint64_t job = 0;
    std::uint64_t tid_base = 0;  // first tid of this run's lanes
    double offset_us = 0.0;
    std::vector<LaneView> lanes;
  };
  struct Counter {
    std::string name;
    std::vector<std::pair<double, double>> points;  // (ts_us, value)
  };

  double now_us_locked() const;
  void life_locked(LifeEvent e);

  const Clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::string> job_names_;
  std::map<std::uint64_t, std::uint64_t> job_next_tid_;  // retries stack
  std::vector<LifeEvent> life_;
  std::vector<Run> runs_;
  std::vector<Counter> counters_;
  std::uint64_t dropped_events_ = 0;
  std::uint64_t dropped_runs_ = 0;
};

}  // namespace ramr::telemetry
