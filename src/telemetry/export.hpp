// Structured exporters: Chrome trace-event JSON (loadable in Perfetto /
// chrome://tracing) and a machine-readable run report.
//
// Both exporters are pure functions over plain view structs so tests can
// feed hand-built, deterministic inputs and compare against goldens; the
// convenience overloads snapshot a live Recorder / Session.
//
// Chrome trace mapping (docs/OBSERVABILITY.md has the full table):
//   kTaskStart/kTaskEnd     ->  "B"/"E" duration pairs (one per task)
//   kPhaseStart/kPhaseEnd   ->  "B"/"E" pairs on the driver lane
//   every other event kind  ->  "i" instants named after the kind
//   sampler series          ->  "C" counter events (graphed as area tracks)
//   lane names              ->  "M" thread_name metadata
// Timestamps are microseconds relative to the recorder epoch; the sampler
// shares that epoch so counter tracks line up with the event tracks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "engine/result.hpp"
#include "perf/counters.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/session.hpp"
#include "trace/trace.hpp"

namespace ramr::telemetry {

class JsonWriter;

// ---- chrome trace ----------------------------------------------------------

// One thread timeline: a lane name plus its (time-ordered) events.
struct LaneView {
  std::string name;
  std::vector<trace::Event> events;
};

std::vector<LaneView> lane_views(const trace::Recorder& recorder);

// Writes {"traceEvents": [...], "displayTimeUnit": "ms"}. Series may be
// empty. process_name labels the single pid used for all tracks.
void chrome_trace_json(std::ostream& out, const std::vector<LaneView>& lanes,
                       const std::vector<Sampler::Series>& series,
                       const std::string& process_name = "ramr");

// Building blocks for multi-process trace documents (the service-wide
// stitched trace, src/telemetry/service_trace.hpp, reuses the single-run
// event mapping with its own pid/tid layout). Each writes complete event
// objects into an already-open "traceEvents" array; ts_offset_us shifts a
// lane recorded against a later epoch onto the document's shared timeline.
void chrome_process_name_json(JsonWriter& w, std::uint64_t pid,
                              const std::string& name);
void chrome_thread_name_json(JsonWriter& w, std::uint64_t pid,
                             std::uint64_t tid, const std::string& name);
void chrome_lane_events_json(JsonWriter& w, const LaneView& lane,
                             std::uint64_t pid, std::uint64_t tid,
                             double ts_offset_us = 0.0);

// ---- run report ------------------------------------------------------------

// Scalar run outcome, decoupled from the RunResult template parameters.
struct RunInfo {
  double split_seconds = 0.0;
  double map_combine_seconds = 0.0;
  double reduce_seconds = 0.0;
  double merge_seconds = 0.0;
  std::size_t pairs = 0;
  std::size_t tasks_executed = 0;
  std::size_t local_pops = 0;
  std::size_t steals = 0;
  std::size_t queue_pushes = 0;
  std::size_t queue_failed_pushes = 0;
  std::size_t queue_batches = 0;
  std::size_t queue_push_batches = 0;
  std::size_t queue_max_occupancy = 0;
  std::size_t backoff_sleeps = 0;
  std::size_t task_retries = 0;
  std::size_t task_aborts = 0;

  // Execution-plan provenance (empty strategy = not stamped, e.g. a
  // hand-built report) and the governor's applied knob changes.
  engine::PlanInfo plan;
  std::vector<engine::GovernorAction> governor_actions;

  // Memory-subsystem outcome. The report always emits a "memory" object —
  // peak_rss_bytes is stamped on every run — but the arena/ring fields
  // inside it appear only when mem.enabled() (RAMR_MEM was on).
  engine::MemStats mem;
  std::size_t peak_rss_bytes = 0;

  // Streaming-input outcome; io.enabled() is false (and the report emits
  // no "io" object) unless an IO-lane source fed the run (RAMR_IO).
  engine::IoStats io;

  // Straggler/skew profile; skew.enabled is false (and the report emits no
  // "skew" object) unless RAMR_OBS was on.
  engine::SkewStats skew;

  // Hot-path dispatch provenance; dispatch.enabled() is false (and the
  // report emits no "dispatch" object) unless RAMR_SIMD or
  // RAMR_ATOMIC_SHARDS departed from the defaults.
  engine::DispatchStats dispatch;
};

template <typename K, typename V>
RunInfo make_run_info(const engine::RunResult<K, V>& r) {
  RunInfo info;
  info.split_seconds = r.timers.seconds(Phase::kSplit);
  info.map_combine_seconds = r.timers.seconds(Phase::kMapCombine);
  info.reduce_seconds = r.timers.seconds(Phase::kReduce);
  info.merge_seconds = r.timers.seconds(Phase::kMerge);
  info.pairs = r.pairs.size();
  info.tasks_executed = r.tasks_executed;
  info.local_pops = r.local_pops;
  info.steals = r.steals;
  info.queue_pushes = r.queue_pushes;
  info.queue_failed_pushes = r.queue_failed_pushes;
  info.queue_batches = r.queue_batches;
  info.queue_push_batches = r.queue_push_batches;
  info.queue_max_occupancy = r.queue_max_occupancy;
  info.backoff_sleeps = r.backoff_sleeps;
  info.task_retries = r.task_retries;
  info.task_aborts = r.task_aborts;
  info.plan = r.plan;
  info.governor_actions = r.governor_actions;
  info.mem = r.mem;
  info.peak_rss_bytes = r.peak_rss_bytes;
  info.io = r.io;
  info.skew = r.skew;
  info.dispatch = r.dispatch;
  return info;
}

// One (phase, pool) row of suitability-metric inputs, source-labeled
// ("pmu" = hardware counters, "model" = analytic stall model).
struct PhaseEntry {
  std::string phase;
  std::string pool;
  std::string source;
  double seconds = 0.0;
  perf::Counters counters;
  std::uint64_t cycles = 0;
  bool cycles_measured = false;
  bool mem_stall_measured = false;
  bool resource_stall_measured = false;
};

struct RunReport {
  std::string app;
  std::string runtime;
  std::string config_summary;
  std::string pmu_mode = "off";
  bool pmu_available = false;
  std::string pmu_reason;
  bool pmu_active = false;
  double input_bytes = 0.0;
  RunInfo result;
  std::vector<PhaseEntry> phases;
  MetricsSnapshot metrics;
  std::vector<Sampler::Series> series;
};

// Fills the telemetry-derived report fields (pmu status, input bytes,
// per-phase counters with their active source, metrics snapshot, sampler
// series) from a live session; the caller sets app/runtime/config/result.
void fill_from_session(RunReport& report, const Session& session);

void run_report_json(std::ostream& out, const RunReport& report);

// Writes `content_writer(stream)` to `path`; throws Error on failure.
void write_json_file(const std::string& path,
                     const std::function<void(std::ostream&)>& content_writer);

// ---- counter documents -----------------------------------------------------

// A flat named-counter JSON document: {"schema": <schema>, "counters":
// {name: value, ...}} with the counters emitted in the given order.
// Subsystems with a handful of monotonic counters (e.g. the service
// scheduler's ramr-service-stats-v1) export through this instead of each
// hand-rolling JSON.
std::string counters_json(
    const std::string& schema,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters);

}  // namespace ramr::telemetry
