// Telemetry session: one per runtime instance, owning the metric registry,
// the optional sampling thread and the PMU backends, and accumulating
// per-phase counter measurements across run() calls (latest run wins).
//
// Lifecycle (driven by engine::PhaseDriver):
//
//   Runtime ctor   Session::from_config (nullptr when RAMR_TELEMETRY is
//                  off — the engine then carries a null pointer and every
//                  instrumentation site is one pointer check)
//   run() start    attach_pools(tids) once, begin_run(epoch) — sampler on
//   per phase      begin_phase / end_phase — PMU deltas per pool
//   run() end      end_run — sampler off
//   afterwards     exporters read phase_counters()/metrics()/series()
//
// The IPB/MSPI/RSPI source resolution lives here: a phase+pool entry is
// "pmu" when the hardware backend measured it, else "model" when the caller
// provided analytic fallback counters (perf/stall_model.hpp), else "none".
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/timing.hpp"
#include "perf/counters.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/pmu.hpp"
#include "telemetry/sampler.hpp"

namespace ramr {
struct RuntimeConfig;
}

namespace ramr::telemetry {

// The two pools the paper distinguishes; single-pool runtimes report
// everything under kMapper (their only pool).
enum class PoolKind : std::size_t { kMapper = 0, kCombiner = 1 };
inline constexpr std::size_t kPoolKinds = 2;

const char* to_string(PoolKind kind);

enum class CounterSource { kNone, kPmu, kModel };

const char* to_string(CounterSource source);

// Resolved IPB/MSPI/RSPI inputs for one (phase, pool) cell.
struct PhaseCounters {
  CounterSource source = CounterSource::kNone;
  perf::Counters counters;  // input_bytes filled from set_input_bytes
  std::uint64_t cycles = 0;
  // Under the pmu source: which stall events the kernel actually granted
  // (instructions are always measured — they gate the pmu source itself).
  bool cycles_measured = false;
  bool mem_stall_measured = false;
  bool resource_stall_measured = false;
};

// Pre-created handles for the engine's instrumentation sites. Slot
// convention across every metric: mapper m writes slot m, combiner j writes
// slot num_mappers + j — the same ordering as engine::Heartbeats.
struct EngineMetrics {
  std::size_t combiner_slot_base = 0;
  Counter* tasks_executed = nullptr;
  Counter* queue_pushes = nullptr;
  Counter* queue_failed_pushes = nullptr;
  Counter* queue_batches = nullptr;
  Counter* queue_push_batches = nullptr;  // producer batched publishes
  Counter* backoff_sleeps = nullptr;
  Counter* task_retries = nullptr;
  Counter* task_aborts = nullptr;
  Histogram* batch_sizes = nullptr;
  Gauge* queue_max_occupancy = nullptr;
  Gauge* arena_high_water = nullptr;  // per-worker arena live bytes (mem on)

  std::size_t combiner_slot(std::size_t j) const {
    return combiner_slot_base + j;
  }
};

struct SessionOptions {
  PmuMode pmu = PmuMode::kAuto;
  std::size_t sample_interval_us = 0;  // 0 = no sampler thread
  std::size_t num_mappers = 1;
  std::size_t num_combiners = 0;
};

class Session {
 public:
  explicit Session(SessionOptions options);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // nullptr when config.telemetry is off. Reads the resolved worker counts
  // and the RAMR_PMU / RAMR_SAMPLE_US knobs mirrored into the config.
  static std::unique_ptr<Session> from_config(const RuntimeConfig& config);

  const SessionOptions& options() const { return options_; }

  // ---- engine-facing surface -------------------------------------------
  EngineMetrics* engine_metrics() { return &engine_metrics_; }
  MetricRegistry& registry() { return registry_; }
  Sampler* sampler() { return sampler_.get(); }

  // Opens per-thread PMU counters (subject to mode and availability); call
  // once per pool-set, before the first begin_phase. Tids <= 0 are skipped.
  void attach_pools(const std::vector<std::int64_t>& mapper_tids,
                    const std::vector<std::int64_t>& combiner_tids);

  void begin_run(Clock::time_point trace_epoch);
  void end_run();
  void begin_phase(Phase phase);
  void end_phase(Phase phase, double seconds);

  // ---- exporter-facing surface -----------------------------------------

  // Bytes of input processed by the run (the IPB denominator).
  void set_input_bytes(double bytes) { input_bytes_ = bytes; }
  double input_bytes() const { return input_bytes_; }

  // Analytic fallback counters for one (phase, pool) cell, used when the
  // PMU did not measure it (see perf/stall_model.hpp for producing them).
  void set_modeled(Phase phase, PoolKind pool, perf::Counters counters);

  // Measured-or-modeled counters with the active source labeled.
  PhaseCounters phase_counters(Phase phase, PoolKind pool) const;

  double phase_seconds(Phase phase) const {
    return phase_seconds_[static_cast<std::size_t>(phase)];
  }

  // True when at least one pool has live hardware counters.
  bool pmu_active() const;
  PmuMode pmu_mode() const { return options_.pmu; }

  MetricsSnapshot metrics() const { return registry_.collect(); }
  std::vector<Sampler::Series> series() const;

 private:
  struct Cell {
    bool measured = false;
    PmuSample sample;
    bool modeled = false;
    perf::Counters model;
  };

  Cell& cell(Phase phase, PoolKind pool) {
    return cells_[static_cast<std::size_t>(phase)]
                 [static_cast<std::size_t>(pool)];
  }
  const Cell& cell(Phase phase, PoolKind pool) const {
    return cells_[static_cast<std::size_t>(phase)]
                 [static_cast<std::size_t>(pool)];
  }

  SessionOptions options_;
  MetricRegistry registry_;
  EngineMetrics engine_metrics_;
  std::unique_ptr<Sampler> sampler_;
  std::unique_ptr<PoolPmu> pool_pmu_[kPoolKinds];
  std::array<std::array<Cell, kPoolKinds>, kPhaseCount> cells_{};
  std::array<double, kPhaseCount> phase_seconds_{};
  double input_bytes_ = 0.0;
};

}  // namespace ramr::telemetry
