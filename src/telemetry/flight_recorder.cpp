#include "telemetry/flight_recorder.hpp"

#include <chrono>
#include <fstream>
#include <ostream>
#include <utility>

#include "common/timing.hpp"
#include "telemetry/json.hpp"

namespace ramr::telemetry {

namespace {

double steady_seconds() {
  return std::chrono::duration_cast<Duration>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_seconds_(steady_seconds()) {
  ring_.reserve(capacity_);
}

void FlightRecorder::set_config(std::string summary) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_summary_ = std::move(summary);
}

void FlightRecorder::record(std::uint64_t job, std::string kind,
                            std::string detail) {
  Event e;
  e.seconds = steady_seconds() - epoch_seconds_;
  e.job = job;
  e.kind = std::move(kind);
  e.detail = std::move(detail);
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[next_] = std::move(e);
    ++dropped_;
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<FlightRecorder::Event> FlightRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // not yet wrapped: already oldest-first
  } else {
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void FlightRecorder::dump_json(
    std::ostream& out, const std::string& reason,
    const std::function<void(JsonWriter&)>& extra) const {
  // Snapshot under the lock, write outside it: a dump must not block the
  // scheduler's event stream on ostream I/O.
  const std::vector<Event> snapshot = events();
  std::string config;
  std::uint64_t dropped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    config = config_summary_;
    dropped = dropped_;
  }

  JsonWriter w(out);
  w.begin_object();
  w.field("schema", "ramr-flight-v1");
  w.field("reason", reason);
  w.field("config", config);
  w.field("dropped", dropped);
  w.begin_array("events");
  for (const Event& e : snapshot) {
    w.begin_object();
    w.field("seconds", e.seconds);
    if (e.job != 0) w.field("job", e.job);
    w.field("kind", e.kind);
    if (!e.detail.empty()) w.field("detail", e.detail);
    w.end_object();
  }
  w.end_array();
  if (extra) {
    w.begin_object("extra");
    extra(w);
    w.end_object();
  }
  w.end_object();
  out << "\n";
}

void FlightRecorder::dump_file(
    const std::string& path, const std::string& reason,
    const std::function<void(JsonWriter&)>& extra) const {
  try {
    std::ofstream out(path);
    if (!out) return;
    dump_json(out, reason, extra);
  } catch (...) {
    // Post-mortem writing is best-effort by contract.
  }
}

}  // namespace ramr::telemetry
