// Service metrics scrape surface: one snapshot struct, two render formats.
//
// The scheduler assembles a ServiceMetricsFrame under its lock (queue
// depth, lease occupancy, depot shelf state, resilience counters, per-app
// EWMA/breaker rows) and hands it here; rendering happens lock-free.
//
//   metrics_prometheus  —  Prometheus text exposition format, ramr_-
//                          prefixed: gauges for instantaneous state,
//                          ramr_service_<name>_total counters, per-app
//                          series labeled {app="..."}.
//   metrics_json        —  the same frame as one JSON document, schema
//                          "ramr-metrics-v1" (the golden tests assert the
//                          two formats carry identical numbers).
//
// Delivery paths (see docs/OBSERVABILITY.md): Scheduler::metrics_text() /
// metrics_json() on demand, a low-cadence background dump to
// RAMR_METRICS_PATH, and `service_demo --report=<path>`.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ramr::telemetry {

struct ServiceMetricsFrame {
  double uptime_seconds = 0.0;

  // Instantaneous scheduler state.
  std::uint64_t queue_depth = 0;
  std::uint64_t running = 0;
  std::uint64_t cores_total = 0;
  std::uint64_t cores_leased = 0;

  // Pool-depot shelf occupancy.
  std::uint64_t depot_built = 0;
  std::uint64_t depot_reused = 0;
  std::uint64_t depot_shelved = 0;  // idle warm sets on the shelf
  std::uint64_t depot_leased = 0;

  // Monotonic resilience counters, in ServiceStats order (the parity test
  // asserts these match Scheduler::stats() exactly).
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  // Per-app EWMA + breaker rows.
  struct AppEntry {
    std::string name;
    double ewma_seconds = 0.0;
    std::uint64_t samples = 0;
    std::uint64_t consecutive_failures = 0;
    std::string breaker;  // "closed" | "open" | "half-open"
  };
  std::vector<AppEntry> apps;
};

// Prometheus text exposition format (0.0.4): "# HELP"/"# TYPE" headers,
// one sample per line, trailing newline.
std::string metrics_prometheus(const ServiceMetricsFrame& frame);

// The same frame as JSON, schema "ramr-metrics-v1".
std::string metrics_json(const ServiceMetricsFrame& frame);

// Numeric breaker state used by both formats (closed=0, open=1,
// half-open=2) so dashboards can graph transitions.
int breaker_state_value(const std::string& breaker);

}  // namespace ramr::telemetry
