#include "telemetry/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace ramr::telemetry {

void JsonWriter::comma() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) os_ << ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::key(std::string_view k) {
  comma();
  write_string(k);
  os_ << ':';
}

void JsonWriter::write_string(std::string_view s) {
  os_ << '"';
  for (char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

std::string JsonWriter::number(double value) {
  if (!std::isfinite(value)) return "null";
  if (value == 0.0) return "0";
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  return ec == std::errc{} ? std::string(buf, end) : std::string("0");
}

void JsonWriter::begin_object() {
  comma();
  os_ << '{';
  needs_comma_.push_back(false);
}

void JsonWriter::begin_object(std::string_view k) {
  key(k);
  os_ << '{';
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  needs_comma_.pop_back();
  os_ << '}';
}

void JsonWriter::begin_array() {
  comma();
  os_ << '[';
  needs_comma_.push_back(false);
}

void JsonWriter::begin_array(std::string_view k) {
  key(k);
  os_ << '[';
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  needs_comma_.pop_back();
  os_ << ']';
}

void JsonWriter::field(std::string_view k, std::string_view value) {
  key(k);
  write_string(value);
}

void JsonWriter::field(std::string_view k, const char* value) {
  field(k, std::string_view(value));
}

void JsonWriter::field(std::string_view k, double value) {
  key(k);
  os_ << number(value);
}

void JsonWriter::field(std::string_view k, std::uint64_t value) {
  key(k);
  os_ << value;
}

void JsonWriter::field(std::string_view k, std::int64_t value) {
  key(k);
  os_ << value;
}

void JsonWriter::field(std::string_view k, bool value) {
  key(k);
  os_ << (value ? "true" : "false");
}

void JsonWriter::element(std::string_view value) {
  comma();
  write_string(value);
}

void JsonWriter::element(double value) {
  comma();
  os_ << number(value);
}

void JsonWriter::element(std::uint64_t value) {
  comma();
  os_ << value;
}

}  // namespace ramr::telemetry
