#include "telemetry/service_trace.hpp"

#include <fstream>
#include <ostream>

#include "telemetry/json.hpp"

namespace ramr::telemetry {

ServiceTrace::ServiceTrace() : epoch_(Clock::now()) {}

double ServiceTrace::now_us_locked() const {
  return seconds_between(epoch_, Clock::now()) * 1e6;
}

void ServiceTrace::life_locked(LifeEvent e) {
  if (life_.size() >= kMaxLifeEvents) {
    ++dropped_events_;
    return;
  }
  life_.push_back(std::move(e));
}

void ServiceTrace::set_job_name(std::uint64_t job, const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  job_names_[job] = name;
}

void ServiceTrace::begin(std::uint64_t job, const std::string& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  life_locked(LifeEvent{now_us_locked(), 'B', job, span, {}});
}

void ServiceTrace::end(std::uint64_t job, const std::string& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  life_locked(LifeEvent{now_us_locked(), 'E', job, span, {}});
}

void ServiceTrace::instant(std::uint64_t job, const std::string& name,
                           const std::string& detail) {
  std::lock_guard<std::mutex> lock(mutex_);
  life_locked(LifeEvent{now_us_locked(), 'i', job, name, detail});
}

void ServiceTrace::counter(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const double ts = now_us_locked();
  for (Counter& c : counters_) {
    if (c.name == name) {
      c.points.emplace_back(ts, value);
      return;
    }
  }
  counters_.push_back(Counter{name, {{ts, value}}});
}

void ServiceTrace::add_run(std::uint64_t job,
                           const trace::Recorder& recorder) {
  std::vector<LaneView> lanes = lane_views(recorder);
  std::lock_guard<std::mutex> lock(mutex_);
  if (runs_.size() >= kMaxRuns) {
    ++dropped_runs_;
    return;
  }
  Run run;
  run.job = job;
  // tid 0 is the lifecycle lane; each attempt's lanes stack after the
  // previous attempt's so retries stay visually separate.
  auto [it, inserted] = job_next_tid_.emplace(job, 1);
  run.tid_base = it->second;
  it->second += lanes.size();
  run.offset_us = seconds_between(epoch_, recorder.epoch()) * 1e6;
  run.lanes = std::move(lanes);
  runs_.push_back(std::move(run));
}

void ServiceTrace::write_chrome(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w(out);
  w.begin_object();
  w.begin_array("traceEvents");

  // pid 0: the scheduler process with its counter tracks.
  chrome_process_name_json(w, 0, "scheduler");
  if (dropped_events_ > 0 || dropped_runs_ > 0) {
    w.begin_object();
    w.field("name", "trace_drops");
    w.field("ph", "i");
    w.field("ts", 0.0);
    w.field("pid", std::uint64_t{0});
    w.field("tid", std::uint64_t{0});
    w.field("s", "p");  // process-scoped instant
    w.begin_object("args");
    w.field("dropped_events", dropped_events_);
    w.field("dropped_runs", dropped_runs_);
    w.end_object();
    w.end_object();
  }
  for (std::size_t c = 0; c < counters_.size(); ++c) {
    for (const auto& [ts, value] : counters_[c].points) {
      w.begin_object();
      w.field("name", counters_[c].name);
      w.field("ph", "C");
      w.field("ts", ts);
      w.field("pid", std::uint64_t{0});
      w.field("tid", static_cast<std::uint64_t>(c));
      w.begin_object("args");
      w.field("value", value);
      w.end_object();
      w.end_object();
    }
  }

  // Per-job process tracks: name metadata + lifecycle lane.
  for (const auto& [job, name] : job_names_) {
    chrome_process_name_json(w, job,
                             "job " + std::to_string(job) + ": " + name);
    chrome_thread_name_json(w, job, 0, "lifecycle");
  }
  for (const LifeEvent& e : life_) {
    w.begin_object();
    w.field("name", e.name);
    w.field("ph", std::string_view(&e.ph, 1));
    w.field("ts", e.ts_us);
    w.field("pid", e.job);
    w.field("tid", std::uint64_t{0});
    if (e.ph == 'i') {
      w.field("s", "t");
      if (!e.detail.empty()) {
        w.begin_object("args");
        w.field("detail", e.detail);
        w.end_object();
      }
    }
    w.end_object();
  }

  // Per-run engine lanes under their job's process.
  for (const Run& run : runs_) {
    for (std::size_t i = 0; i < run.lanes.size(); ++i) {
      const std::uint64_t tid = run.tid_base + i;
      chrome_thread_name_json(w, run.job, tid, run.lanes[i].name);
      chrome_lane_events_json(w, run.lanes[i], run.job, tid, run.offset_us);
    }
  }

  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  out << "\n";
}

void ServiceTrace::write_file(const std::string& path) const {
  try {
    std::ofstream out(path);
    if (!out) return;
    write_chrome(out);
  } catch (...) {
    // Best-effort by contract.
  }
}

std::uint64_t ServiceTrace::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_events_;
}

std::uint64_t ServiceTrace::dropped_runs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_runs_;
}

}  // namespace ramr::telemetry
