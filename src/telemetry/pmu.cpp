#include "telemetry/pmu.hpp"

#include <array>
#include <cerrno>
#include <cstring>

#include "common/error.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define RAMR_HAVE_PERF_EVENT 1
#endif

namespace ramr::telemetry {

PmuMode parse_pmu_mode(const std::string& name) {
  if (name == "auto" || name == "1") return PmuMode::kAuto;
  if (name == "on" || name == "force") return PmuMode::kOn;
  if (name == "off" || name == "0" || name == "none") return PmuMode::kOff;
  throw ConfigError("RAMR_PMU: unknown PMU mode '" + name +
                    "' (expected auto|on|off)");
}

std::string to_string(PmuMode mode) {
  switch (mode) {
    case PmuMode::kAuto: return "auto";
    case PmuMode::kOn: return "on";
    case PmuMode::kOff: return "off";
  }
  return "?";
}

#if defined(RAMR_HAVE_PERF_EVENT)

namespace {

long sys_perf_event_open(perf_event_attr* attr, pid_t pid, int cpu,
                         int group_fd, unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

perf_event_attr make_attr(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // works at perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  attr.inherit = 0;
  return attr;
}

// The four events we try per thread, in PmuSample field order.
struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr EventSpec kEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
    // RESOURCE_STALLS.ANY: raw event 0xa2, umask 0x01 (Intel); opening
    // simply fails on other vendors and the event is marked unmeasured.
    {PERF_TYPE_RAW, 0x01a2},
};
constexpr std::size_t kNumEvents = 4;

}  // namespace

const PmuAvailability& pmu_probe() {
  static const PmuAvailability cached = [] {
    PmuAvailability a;
    perf_event_attr attr =
        make_attr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
    const long fd = sys_perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1,
                                        /*group_fd=*/-1, /*flags=*/0);
    if (fd >= 0) {
      close(static_cast<int>(fd));
      a.available = true;
      a.reason = "";
      return a;
    }
    a.available = false;
    a.reason = std::string("perf_event_open failed: ") + std::strerror(errno) +
               " (check /proc/sys/kernel/perf_event_paranoid or container "
               "seccomp policy)";
    return a;
  }();
  return cached;
}

struct PoolPmu::Impl {
  // fds_[thread][event]; -1 = event unavailable for that thread.
  std::vector<std::array<int, kNumEvents>> fds;
  std::array<bool, kNumEvents> event_valid{};  // opened on >= 1 thread
  PmuSample accumulated;

  ~Impl() {
    for (auto& per_thread : fds) {
      for (int fd : per_thread) {
        if (fd >= 0) close(fd);
      }
    }
  }
};

PoolPmu::PoolPmu(const std::vector<std::int64_t>& tids)
    : impl_(std::make_unique<Impl>()) {
  if (!pmu_probe().available) return;
  for (std::int64_t tid : tids) {
    std::array<int, kNumEvents> per_thread;
    per_thread.fill(-1);
    if (tid > 0) {
      for (std::size_t e = 0; e < kNumEvents; ++e) {
        perf_event_attr attr = make_attr(kEvents[e].type, kEvents[e].config);
        const long fd =
            sys_perf_event_open(&attr, static_cast<pid_t>(tid), -1, -1, 0);
        if (fd >= 0) {
          per_thread[e] = static_cast<int>(fd);
          impl_->event_valid[e] = true;
        }
      }
    }
    impl_->fds.push_back(per_thread);
  }
  // Instructions are the metrics' common denominator: without them nothing
  // is derivable, so treat the pool as unmeasured.
  if (!impl_->event_valid[0]) {
    for (auto& per_thread : impl_->fds) {
      for (int& fd : per_thread) {
        if (fd >= 0) {
          close(fd);
          fd = -1;
        }
      }
    }
    impl_->fds.clear();
  }
}

PoolPmu::~PoolPmu() = default;

bool PoolPmu::measuring() const { return !impl_->fds.empty(); }

void PoolPmu::begin() {
  for (auto& per_thread : impl_->fds) {
    for (int fd : per_thread) {
      if (fd < 0) continue;
      ioctl(fd, PERF_EVENT_IOC_RESET, 0);
      ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
    }
  }
}

PmuSample PoolPmu::end() {
  PmuSample sample;
  if (!measuring()) return sample;
  std::array<std::uint64_t, kNumEvents> sums{};
  for (auto& per_thread : impl_->fds) {
    for (std::size_t e = 0; e < kNumEvents; ++e) {
      const int fd = per_thread[e];
      if (fd < 0) continue;
      ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
      std::uint64_t value = 0;
      if (read(fd, &value, sizeof(value)) == sizeof(value)) {
        sums[e] += value;
      }
    }
  }
  sample.instructions = sums[0];
  sample.cycles = sums[1];
  sample.mem_stall_cycles = sums[2];
  sample.resource_stall_cycles = sums[3];
  sample.instructions_valid = impl_->event_valid[0];
  sample.cycles_valid = impl_->event_valid[1];
  sample.mem_stall_valid = impl_->event_valid[2];
  sample.resource_stall_valid = impl_->event_valid[3];
  return sample;
}

#else  // !RAMR_HAVE_PERF_EVENT — non-Linux stub: permanently unavailable.

const PmuAvailability& pmu_probe() {
  static const PmuAvailability cached{
      false, "perf_event_open is not available on this platform"};
  return cached;
}

struct PoolPmu::Impl {};

PoolPmu::PoolPmu(const std::vector<std::int64_t>&)
    : impl_(std::make_unique<Impl>()) {}
PoolPmu::~PoolPmu() = default;
bool PoolPmu::measuring() const { return false; }
void PoolPmu::begin() {}
PmuSample PoolPmu::end() { return PmuSample{}; }

#endif

}  // namespace ramr::telemetry
