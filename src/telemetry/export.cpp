#include "telemetry/export.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "telemetry/json.hpp"

namespace ramr::telemetry {

namespace {

// Trace-event timestamps are microseconds.
double micros(double seconds) { return seconds * 1e6; }

void event_common(JsonWriter& w, const char* ph, double ts, std::uint64_t pid,
                  std::uint64_t tid) {
  w.field("ph", ph);
  w.field("ts", ts);
  w.field("pid", pid);
  w.field("tid", tid);
}

}  // namespace

void chrome_process_name_json(JsonWriter& w, std::uint64_t pid,
                              const std::string& name) {
  w.begin_object();
  w.field("ph", "M");
  w.field("name", "process_name");
  w.field("pid", pid);
  w.begin_object("args");
  w.field("name", name);
  w.end_object();
  w.end_object();
}

void chrome_thread_name_json(JsonWriter& w, std::uint64_t pid,
                             std::uint64_t tid, const std::string& name) {
  w.begin_object();
  w.field("ph", "M");
  w.field("name", "thread_name");
  w.field("pid", pid);
  w.field("tid", tid);
  w.begin_object("args");
  w.field("name", name);
  w.end_object();
  w.end_object();
}

void chrome_lane_events_json(JsonWriter& w, const LaneView& lane,
                             std::uint64_t pid, std::uint64_t tid,
                             double ts_offset_us) {
  for (const trace::Event& e : lane.events) {
    const double ts = micros(e.seconds) + ts_offset_us;
    w.begin_object();
    switch (e.kind) {
      case trace::EventKind::kTaskStart:
        w.field("name", "task");
        event_common(w, "B", ts, pid, tid);
        w.begin_object("args");
        w.field("first_split", e.arg);
        w.end_object();
        break;
      case trace::EventKind::kTaskEnd:
        w.field("name", "task");
        event_common(w, "E", ts, pid, tid);
        break;
      case trace::EventKind::kPhaseStart:
        w.field("name", phase_name(static_cast<Phase>(e.arg)));
        event_common(w, "B", ts, pid, tid);
        break;
      case trace::EventKind::kPhaseEnd:
        w.field("name", phase_name(static_cast<Phase>(e.arg)));
        event_common(w, "E", ts, pid, tid);
        break;
      default:
        // Instant event named after the kind; arg carried for reference.
        w.field("name", trace::to_string(e.kind));
        event_common(w, "i", ts, pid, tid);
        w.field("s", "t");  // thread-scoped instant
        w.begin_object("args");
        w.field("arg", e.arg);
        w.end_object();
        break;
    }
    w.end_object();
  }
}

std::vector<LaneView> lane_views(const trace::Recorder& recorder) {
  std::vector<LaneView> views;
  views.reserve(recorder.lane_count());
  for (std::size_t i = 0; i < recorder.lane_count(); ++i) {
    const trace::Lane& lane = recorder.lane_at(i);
    views.push_back(LaneView{lane.name(), lane.events()});
  }
  return views;
}

void chrome_trace_json(std::ostream& out, const std::vector<LaneView>& lanes,
                       const std::vector<Sampler::Series>& series,
                       const std::string& process_name) {
  JsonWriter w(out);
  w.begin_object();
  w.begin_array("traceEvents");

  // Metadata: process name and one thread_name entry per lane.
  chrome_process_name_json(w, 1, process_name);
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    chrome_thread_name_json(w, 1, static_cast<std::uint64_t>(i),
                            lanes[i].name);
  }

  for (std::size_t i = 0; i < lanes.size(); ++i) {
    chrome_lane_events_json(w, lanes[i], 1, static_cast<std::uint64_t>(i));
  }

  // Sampler series as counter tracks on their own tids (after the lanes).
  for (std::size_t s = 0; s < series.size(); ++s) {
    const auto tid = static_cast<std::uint64_t>(lanes.size() + s);
    for (const auto& [t, v] : series[s].points) {
      w.begin_object();
      w.field("name", series[s].name);
      event_common(w, "C", micros(t), 1, tid);
      w.begin_object("args");
      w.field("value", v);
      w.end_object();
      w.end_object();
    }
  }

  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  out << "\n";
}

void fill_from_session(RunReport& report, const Session& session) {
  report.pmu_mode = to_string(session.pmu_mode());
  report.pmu_available = pmu_probe().available;
  report.pmu_reason = pmu_probe().reason;
  report.pmu_active = session.pmu_active();
  report.input_bytes = session.input_bytes();
  report.phases.clear();
  for (std::size_t ph = 0; ph < kPhaseCount; ++ph) {
    const auto phase = static_cast<Phase>(ph);
    for (std::size_t pl = 0; pl < kPoolKinds; ++pl) {
      const auto pool = static_cast<PoolKind>(pl);
      const PhaseCounters pc = session.phase_counters(phase, pool);
      if (pc.source == CounterSource::kNone) continue;
      PhaseEntry entry;
      entry.phase = phase_name(phase);
      entry.pool = to_string(pool);
      entry.source = to_string(pc.source);
      entry.seconds = session.phase_seconds(phase);
      entry.counters = pc.counters;
      entry.cycles = pc.cycles;
      entry.cycles_measured = pc.cycles_measured;
      entry.mem_stall_measured = pc.mem_stall_measured;
      entry.resource_stall_measured = pc.resource_stall_measured;
      report.phases.push_back(std::move(entry));
    }
  }
  report.metrics = session.metrics();
  report.series = session.series();
}

void run_report_json(std::ostream& out, const RunReport& report) {
  JsonWriter w(out);
  w.begin_object();
  w.field("schema", "ramr-run-report-v1");
  w.field("app", report.app);
  w.field("runtime", report.runtime);
  w.field("config", report.config_summary);

  w.begin_object("pmu");
  w.field("mode", report.pmu_mode);
  w.field("available", report.pmu_available);
  if (!report.pmu_available) w.field("reason", report.pmu_reason);
  w.field("active", report.pmu_active);
  w.end_object();

  w.field("input_bytes", report.input_bytes);

  w.begin_object("result");
  w.field("split_seconds", report.result.split_seconds);
  w.field("map_combine_seconds", report.result.map_combine_seconds);
  w.field("reduce_seconds", report.result.reduce_seconds);
  w.field("merge_seconds", report.result.merge_seconds);
  w.field("pairs", static_cast<std::uint64_t>(report.result.pairs));
  w.field("tasks_executed",
          static_cast<std::uint64_t>(report.result.tasks_executed));
  w.field("local_pops", static_cast<std::uint64_t>(report.result.local_pops));
  w.field("steals", static_cast<std::uint64_t>(report.result.steals));
  w.field("queue_pushes",
          static_cast<std::uint64_t>(report.result.queue_pushes));
  w.field("queue_failed_pushes",
          static_cast<std::uint64_t>(report.result.queue_failed_pushes));
  w.field("queue_batches",
          static_cast<std::uint64_t>(report.result.queue_batches));
  w.field("queue_push_batches",
          static_cast<std::uint64_t>(report.result.queue_push_batches));
  w.field("queue_max_occupancy",
          static_cast<std::uint64_t>(report.result.queue_max_occupancy));
  w.field("backoff_sleeps",
          static_cast<std::uint64_t>(report.result.backoff_sleeps));
  w.field("task_retries",
          static_cast<std::uint64_t>(report.result.task_retries));
  w.field("task_aborts",
          static_cast<std::uint64_t>(report.result.task_aborts));
  w.end_object();

  // Plan provenance; emitted whenever the result carries *any* stamped
  // subsystem state — not just a named strategy — so a mem-only run still
  // reports its plan.source uniformly (consumers saw the object vanish when
  // adapt was off but RAMR_MEM was on; schema note in
  // docs/OBSERVABILITY.md). Hand-built reports with neither stay as-is so
  // their goldens are unchanged.
  if (!report.result.plan.strategy.empty() || report.result.mem.enabled()) {
    const engine::PlanInfo& plan = report.result.plan;
    w.begin_object("plan");
    w.field("strategy", plan.strategy);
    w.field("ratio", static_cast<std::uint64_t>(plan.ratio));
    w.field("batch_size", static_cast<std::uint64_t>(plan.batch_size));
    w.field("queue_capacity",
            static_cast<std::uint64_t>(plan.queue_capacity));
    w.field("pin_policy", plan.pin_policy);
    w.field("source",
            plan.source.empty() ? std::string("default") : plan.source);
    w.end_object();
  }
  // Memory outcome: always emitted, because peak_rss_bytes is stamped on
  // every run — the streaming path's flat-memory claim must be checkable
  // from any report, RAMR_MEM or not. The arena/ring fields still appear
  // only when the memory subsystem was actually on.
  {
    const engine::MemStats& mem = report.result.mem;
    w.begin_object("memory");
    w.field("peak_rss_bytes",
            static_cast<std::uint64_t>(report.result.peak_rss_bytes));
    if (mem.enabled()) {
      w.field("mode", mem.mode);
      w.field("arena_high_water",
              static_cast<std::uint64_t>(mem.arena_high_water));
      w.field("arena_chunk_bytes",
              static_cast<std::uint64_t>(mem.arena_chunk_bytes));
      w.field("arena_resets", static_cast<std::uint64_t>(mem.arena_resets));
      w.field("ring_bytes", static_cast<std::uint64_t>(mem.ring_bytes));
      w.field("ring_reuses", static_cast<std::uint64_t>(mem.ring_reuses));
      w.field("hugepages", mem.hugepages);
      w.field("mbind", mem.mbind);
    }
    w.end_object();
  }
  // Hot-path dispatch provenance (RAMR_SIMD / RAMR_ATOMIC_SHARDS); omitted
  // for default-configured runs so their reports stay byte-identical.
  if (report.result.dispatch.enabled()) {
    const engine::DispatchStats& dispatch = report.result.dispatch;
    w.begin_object("dispatch");
    if (!dispatch.simd_path.empty()) {
      w.field("simd_path", dispatch.simd_path);
      w.field("isa", dispatch.isa);
    }
    if (dispatch.atomic_shards > 1) {
      w.field("atomic_shards",
              static_cast<std::uint64_t>(dispatch.atomic_shards));
    }
    w.end_object();
  }
  // Streaming-input outcome (RAMR_IO); omitted when the run was fed by a
  // materialized input so non-streaming reports gain only the "memory"
  // object above.
  if (report.result.io.enabled()) {
    const engine::IoStats& io = report.result.io;
    w.begin_object("io");
    w.field("mode", io.mode);
    w.field("source", io.source);
    w.field("bytes_read", io.bytes_read);
    w.field("windows", io.windows);
    w.field("window_bytes", io.window_bytes);
    w.field("depth", io.depth);
    w.field("io_stalls", io.io_stalls);
    w.field("map_waits", io.map_waits);
    w.field("io_retries", io.io_retries);
    w.field("carry_bytes", io.carry_bytes);
    w.end_object();
  }
  // Skew profile (RAMR_OBS=1); omitted when the profiler was off so
  // default reports are unchanged.
  if (report.result.skew.enabled) {
    const engine::SkewStats& skew = report.result.skew;
    w.begin_object("skew");
    w.field("map_imbalance", skew.map_imbalance);
    w.field("drain_imbalance", skew.drain_imbalance);
    w.field("straggler", skew.straggler);
    w.field("sampled", skew.sampled);
    w.field("ring_depth", skew.ring_depth);
    w.begin_array("hot_keys");
    for (const engine::SkewStats::HotKey& k : skew.hot_keys) {
      w.begin_object();
      w.field("key", k.key);
      w.field("est_count", k.est_count);
      w.field("share", k.share);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  if (!report.result.governor_actions.empty()) {
    w.begin_array("governor_actions");
    for (const engine::GovernorAction& a : report.result.governor_actions) {
      w.begin_object();
      w.field("seconds", a.seconds);
      w.field("knob", a.knob);
      w.field("from", a.from);
      w.field("to", a.to);
      w.end_object();
    }
    w.end_array();
  }

  w.begin_array("phases");
  for (const PhaseEntry& p : report.phases) {
    w.begin_object();
    w.field("phase", p.phase);
    w.field("pool", p.pool);
    w.field("source", p.source);
    w.field("seconds", p.seconds);
    w.field("instructions", p.counters.instructions);
    w.field("mem_stall_cycles", p.counters.mem_stall_cycles);
    w.field("resource_stall_cycles", p.counters.resource_stall_cycles);
    w.field("input_bytes", p.counters.input_bytes);
    w.field("ipb", p.counters.ipb());
    w.field("mspi", p.counters.mspi());
    w.field("rspi", p.counters.rspi());
    if (p.source == "pmu") {
      w.field("cycles", p.cycles);
      w.field("cycles_measured", p.cycles_measured);
      w.field("mem_stall_measured", p.mem_stall_measured);
      w.field("resource_stall_measured", p.resource_stall_measured);
    }
    w.end_object();
  }
  w.end_array();

  w.begin_object("metrics");
  w.begin_array("counters");
  for (const CounterSnapshot& c : report.metrics.counters) {
    w.begin_object();
    w.field("name", c.name);
    w.field("total", c.total);
    w.begin_array("per_slot");
    for (std::uint64_t v : c.per_slot) w.element(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.begin_array("gauges");
  for (const GaugeSnapshot& g : report.metrics.gauges) {
    w.begin_object();
    w.field("name", g.name);
    w.field("max", g.max);
    w.begin_array("per_slot");
    for (double v : g.per_slot) w.element(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.begin_array("histograms");
  for (const HistogramSnapshot& h : report.metrics.histograms) {
    w.begin_object();
    w.field("name", h.name);
    w.field("count", h.count);
    w.field("p50", h.quantile(0.50));
    w.field("p90", h.quantile(0.90));
    w.field("p99", h.quantile(0.99));
    w.field("max", h.quantile(1.0));
    // Sparse bucket listing: [bucket_index, count] for nonzero buckets.
    w.begin_array("buckets");
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      w.begin_array();
      w.element(static_cast<std::uint64_t>(b));
      w.element(h.buckets[b]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.begin_array("series");
  for (const Sampler::Series& s : report.series) {
    w.begin_object();
    w.field("name", s.name);
    w.field("dropped", static_cast<std::uint64_t>(s.dropped));
    w.begin_array("points");
    for (const auto& [t, v] : s.points) {
      w.begin_array();
      w.element(t);
      w.element(v);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.end_object();
  out << "\n";
}

void write_json_file(
    const std::string& path,
    const std::function<void(std::ostream&)>& content_writer) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  content_writer(out);
  out.flush();
  if (!out) throw Error("failed writing '" + path + "'");
}

std::string counters_json(
    const std::string& schema,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", schema);
  w.begin_object("counters");
  for (const auto& [name, value] : counters) w.field(name, value);
  w.end_object();
  w.end_object();
  os << "\n";
  return os.str();
}

}  // namespace ramr::telemetry
