// Calibration table. Sources per number:
//  * instr_per_byte — counted from the inner loops of src/apps/*.hpp
//    (e.g. LR does ~20 ops per 4-byte point; PCA/MM do ~2*inner flops per
//    emitted element), cross-checked against the paper's Fig. 10 ordering
//    (PCA >> MM > KM > WC > LR > HG with default containers);
//  * footprints — container/table sizes of the implementations (HG: 768*8B
//    array; WC: ~200KB hash table; MM default: the full output array per
//    worker, the paper's Sec. IV-E observation; MM hash: right-sized table,
//    which is why its stalls *drop* with the hash flavor);
//  * regularity / resource_pressure — qualitative, from the paper's
//    Sec. IV-E discussion (HG/LR light and streaming; KM/MM frequent memory
//    and resource stalls; PCA compute-dense and stall-free);
//  * kv_per_byte / kv_bytes — exact, from each app's emission pattern
//    (HG emits one record per input byte; LR five per 4-byte point; WC one
//    per ~5.5-byte word; KM one 48-byte accum per 12-byte point; MM/PCA one
//    partial per produced element).
#include "perf/profiles.hpp"

#include "common/error.hpp"

namespace ramr::perf {

using apps::AppId;
using apps::ContainerFlavor;

AppProfile app_profile(AppId app, ContainerFlavor flavor) {
  const bool hash = flavor == ContainerFlavor::kHash;
  AppProfile p;
  switch (app) {
    case AppId::kHistogram:
      p.name = "hg";
      // One byte -> one bin increment: the suite's lightest workload.
      p.map = {.instr_per_byte = 4.0,
               .bytes_per_byte = 1.0,
               .footprint_bytes = 64e3,
               .regularity = 0.95,
               .resource_pressure = 0.08};
      // Hash flavor: one probe per input byte; every probe pulls 1-2
      // random cache lines of the table -> line-granular traffic.
      p.combine = hash ? PhaseProfile{.instr_per_byte = 14.0,
                                      .bytes_per_byte = 96.0,
                                      .footprint_bytes = 150e3,
                                      .regularity = 0.08,
                                      .resource_pressure = 0.60}
                       : PhaseProfile{.instr_per_byte = 2.0,
                                      .bytes_per_byte = 1.0,
                                      .footprint_bytes = 6.1e3,
                                      .regularity = 0.45,
                                      .resource_pressure = 0.10};
      p.kv_per_byte = 1.0;
      p.kv_bytes = 16.0;
      p.container_bytes = hash ? 18e3 : 6.1e3;  // 768 bins (hash: wider slots)
      break;

    case AppId::kLinearRegression:
      p.name = "lr";
      // ~20 integer ops per 4-byte point, five emissions per point.
      p.map = {.instr_per_byte = 5.0,
               .bytes_per_byte = 1.0,
               .footprint_bytes = 64e3,
               .regularity = 0.97,
               .resource_pressure = 0.10};
      // Hash flavor: 1.25 probes per input byte, line-granular.
      p.combine = hash ? PhaseProfile{.instr_per_byte = 12.0,
                                      .bytes_per_byte = 80.0,
                                      .footprint_bytes = 60e3,
                                      .regularity = 0.10,
                                      .resource_pressure = 0.55}
                       : PhaseProfile{.instr_per_byte = 2.5,
                                      .bytes_per_byte = 1.2,
                                      .footprint_bytes = 4e2,
                                      .regularity = 0.60,
                                      .resource_pressure = 0.10};
      p.kv_per_byte = 1.25;
      p.kv_bytes = 16.0;
      p.container_bytes = hash ? 200.0 : 40.0;  // five moment sums
      break;

    case AppId::kWordCount:
      p.name = "wc";
      // Tokenisation streams; counting hashes into a ~200KB table. The
      // default container is already a hash table (the paper's Fig. 10b
      // note: "the hash table overhead has been already counted").
      p.map = {.instr_per_byte = 8.0,
               .bytes_per_byte = 1.1,
               .footprint_bytes = 64e3,
               .regularity = 0.90,
               .resource_pressure = 0.20};
      // ~0.18 probes per byte x 1.5 lines per probe.
      p.combine = hash ? PhaseProfile{.instr_per_byte = 8.0,
                                      .bytes_per_byte = 15.0,
                                      .footprint_bytes = 200e3,
                                      .regularity = 0.12,
                                      .resource_pressure = 0.42}
                       : PhaseProfile{.instr_per_byte = 7.0,
                                      .bytes_per_byte = 13.0,
                                      .footprint_bytes = 200e3,
                                      .regularity = 0.15,
                                      .resource_pressure = 0.40};
      p.kv_per_byte = 0.18;
      p.kv_bytes = 24.0;
      // Record line plus the dereferenced word text in the producer's cache.
      p.comm_lines_per_kv = 2.0;
      p.container_bytes = 150e3;  // ~4K distinct words x slot
      break;

    case AppId::kKMeans:
      p.name = "km";
      // 16 centroids x 3 dims of dependent FP per 12-byte point: compute-
      // dense with long dependency chains (high RSPI) and accumulator
      // traffic (high MSPI) — the paper's best default-container candidate.
      p.map = {.instr_per_byte = 13.0,
               .bytes_per_byte = 1.6,
               .footprint_bytes = 2.5e6,
               .regularity = 0.45,
               .resource_pressure = 0.55};
      // 48-byte accumulator read-modify-write per point (~2 lines).
      p.combine = hash ? PhaseProfile{.instr_per_byte = 4.0,
                                      .bytes_per_byte = 9.0,
                                      .footprint_bytes = 7e5,
                                      .regularity = 0.25,
                                      .resource_pressure = 0.50}
                       : PhaseProfile{.instr_per_byte = 1.5,
                                      .bytes_per_byte = 10.0,
                                      .footprint_bytes = 1e6,
                                      .regularity = 0.30,
                                      .resource_pressure = 0.55};
      p.kv_per_byte = 1.0 / 12.0;
      p.kv_bytes = 48.0;
      p.container_bytes = hash ? 1.3e3 : 0.7e3;  // 16 centroid accumulators
      break;

    case AppId::kPca:
      p.name = "pca";
      // O(rows) flops per byte of column chunk: by far the highest IPB of
      // the suite, fully streaming and ILP-friendly — almost no stalls.
      p.map = {.instr_per_byte = 240.0,
               .bytes_per_byte = 1.2,
               .footprint_bytes = 5e5,
               .regularity = 0.96,
               .resource_pressure = 0.04};
      // 0.9 emissions per byte; the packed triangle index makes the
      // default array walk nearly sequential, the hash flavor random.
      // Even the hash flavor stays stall-light (Fig. 10b: "the number of
      // resource and memory stalls is very low"); RAMR's 20% loss here is
      // queue traffic (0.9 records/byte) plus idle combiners.
      p.combine = hash ? PhaseProfile{.instr_per_byte = 5.0,
                                      .bytes_per_byte = 6.0,
                                      .footprint_bytes = 6e6,
                                      .regularity = 0.50,
                                      .resource_pressure = 0.10}
                       : PhaseProfile{.instr_per_byte = 1.0,
                                      .bytes_per_byte = 15.0,
                                      .footprint_bytes = 4e6,
                                      .regularity = 0.85,
                                      .resource_pressure = 0.06};
      p.kv_per_byte = 0.9;
      p.kv_bytes = 16.0;
      p.container_bytes = hash ? 6e6 : 4e6;  // rows(rows+1)/2 partial sums
      break;

    case AppId::kMatrixMultiply:
      p.name = "mm";
      // Dot products: heavy compute, but B is walked column-wise across a
      // tens-of-MB matrix (poor locality -> high MSPI, misses fill the ROB
      // -> high RSPI). Default container is the whole output array per
      // worker ("only a small part of it is used"); the right-sized hash
      // table *reduces* the stalls (paper Sec. IV-E).
      p.map = {.instr_per_byte = 150.0,
               .bytes_per_byte = 6.0,
               .footprint_bytes = 32e6,
               .regularity = 0.35,
               .resource_pressure = 0.60};
      // Default: sequential stores into the oversized array (cold lines);
      // hash: random probes of the right-sized table.
      p.combine = hash ? PhaseProfile{.instr_per_byte = 5.0,
                                      .bytes_per_byte = 6.5,
                                      .footprint_bytes = 8e6,
                                      .regularity = 0.25,
                                      .resource_pressure = 0.65}
                       : PhaseProfile{.instr_per_byte = 1.0,
                                      .bytes_per_byte = 4.0,
                                      .footprint_bytes = 32e6,
                                      .regularity = 0.60,
                                      .resource_pressure = 0.45};
      p.kv_per_byte = 0.065;
      p.kv_bytes = 16.0;
      // Default: the full output array per worker (paper Sec. IV-E);
      // hash: right-sized to the keys each worker actually produced.
      p.container_bytes = hash ? 8e6 : 32e6;
      break;

    default:
      throw Error("app_profile: unknown app");
  }
  if (hash && app != AppId::kWordCount) {
    // Hash calculation + probing raises the instruction intensity of the
    // *map-combine phase as measured* (Fig. 10b: "an increase in the IPB
    // ... is expected"); WC is the documented exception.
    p.map.instr_per_byte *= 1.15;
  }
  return p;
}

}  // namespace ramr::perf
