// Analytic stall model: workload profile + effective cache shares ->
// Counters (instructions, memory-stall cycles, resource-stall cycles).
//
// This is the reproduction's stand-in for the paper's hardware PMU reads
// (see perf/counters.hpp). The model is deliberately simple and monotone:
//   * the working-set fraction that does not fit a cache level misses it,
//     attenuated by access regularity (hardware prefetchers hide streaming
//     misses almost entirely);
//   * each miss costs the next level's latency; out-of-order cores overlap
//     part of that latency (memory-level parallelism), in-order cores eat
//     all of it;
//   * resource stalls scale with the profile's resource_pressure knob —
//     the paper's "full ROB, no eligible RS entries or no space in the
//     load/store buffer" — and shrink with regularity.
// Property tests assert the monotonicities; the platform simulator builds
// its per-thread cycle costs on top of these counters.
#pragma once

#include "perf/counters.hpp"
#include "perf/profiles.hpp"

namespace ramr::perf {

// Effective memory system seen by ONE thread: capacity *shares* (the level
// capacity divided among the threads that compete for it) and latencies in
// cycles to reach each level on a miss in the previous one.
struct MemSystemView {
  double l1_bytes = 32.0 * 1024;
  double l2_bytes = 256.0 * 1024;
  double l3_bytes = 35.0 * 1024 * 1024;  // 0 = no L3 (Xeon Phi)
  double l2_latency = 12.0;              // L1 miss, L2 hit
  double l3_latency = 40.0;              // L2 miss, L3 hit
  double mem_latency = 200.0;            // last-level miss
  bool out_of_order = true;              // overlaps part of the stalls
};

// Counters for a phase processing `input_bytes` through `profile` on a
// thread with the given memory-system view.
Counters estimate_phase(const PhaseProfile& profile, double input_bytes,
                        const MemSystemView& mem);

// Per-line miss cost in cycles (used by the simulator's communication model
// as well): expected stall cycles for one cache-line-sized access with the
// given footprint/regularity.
double expected_stall_per_line(const PhaseProfile& profile,
                               const MemSystemView& mem);

}  // namespace ramr::perf
