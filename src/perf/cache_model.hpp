// Set-associative LRU cache simulator.
//
// Used two ways: (1) as the validation reference for the analytic miss-rate
// model the platform simulator runs on (tests drive both against the same
// access patterns), and (2) directly by microbenches that want per-access
// hit/miss traces for small kernels. Multi-level hierarchies compose
// single caches with inclusive lookup (miss in L1 -> access L2, ...).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ramr::perf {

struct CacheConfig {
  std::size_t size_bytes = 32 * 1024;
  std::size_t line_bytes = 64;
  std::size_t ways = 8;

  std::size_t num_sets() const {
    return size_bytes / (line_bytes * ways);
  }
};

class CacheSim {
 public:
  explicit CacheSim(CacheConfig config);

  // Returns true on hit; installs/refreshes the line on miss (LRU).
  bool access(std::uint64_t address);

  void flush();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }
  double miss_rate() const {
    return accesses() > 0 ? static_cast<double>(misses_) /
                                static_cast<double>(accesses())
                          : 0.0;
  }
  const CacheConfig& config() const { return config_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-use stamp
    bool valid = false;
  };

  CacheConfig config_;
  std::size_t set_mask_;
  unsigned line_shift_;
  std::vector<Way> ways_;  // num_sets x ways, row-major
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

// A small inclusive hierarchy: access() walks levels until it hits and
// returns the level index (0 = L1) or levels() on a full miss to memory.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(std::vector<CacheConfig> levels);

  std::size_t access(std::uint64_t address);
  std::size_t levels() const { return caches_.size(); }
  const CacheSim& level(std::size_t i) const { return caches_.at(i); }
  void flush();

 private:
  std::vector<CacheSim> caches_;
};

}  // namespace ramr::perf
