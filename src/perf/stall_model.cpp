#include "perf/stall_model.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ramr::perf {

std::string Counters::summary() const {
  std::ostringstream os;
  os.precision(4);
  os << "ipb=" << ipb() << " mspi=" << mspi() << " rspi=" << rspi();
  return os.str();
}

namespace {

// Fraction of line accesses that miss a level of capacity `cap` given a
// working set `footprint` and access regularity. Streaming sets are
// prefetched nearly perfectly; random sets miss in proportion to how much
// of the footprint exceeds the capacity.
double miss_fraction(double footprint, double cap, double regularity) {
  if (cap <= 0.0) return 1.0;  // level absent: everything falls through
  if (footprint <= cap) return 0.0;
  const double over = 1.0 - cap / footprint;
  const double prefetch_cover = 0.97 * regularity;
  return over * (1.0 - prefetch_cover);
}

// Fraction of miss latency an out-of-order core hides via MLP/prefetch.
double oo_hide(double regularity) { return 0.35 + 0.55 * regularity; }

}  // namespace

double expected_stall_per_line(const PhaseProfile& profile,
                               const MemSystemView& mem) {
  const double f = profile.footprint_bytes;
  const double r = profile.regularity;
  const double m1 = miss_fraction(f, mem.l1_bytes, r);
  const double m2 = m1 * miss_fraction(f, mem.l2_bytes, r);
  const double has_l3 = mem.l3_bytes > 0.0 ? 1.0 : 0.0;
  const double m3 = has_l3 > 0.0 ? m2 * miss_fraction(f, mem.l3_bytes, r)
                                 : m2;
  double stall = (m1 - m2) * mem.l2_latency;
  if (has_l3 > 0.0) {
    stall += (m2 - m3) * mem.l3_latency + m3 * mem.mem_latency;
  } else {
    stall += m2 * mem.mem_latency;
  }
  if (mem.out_of_order) stall *= 1.0 - oo_hide(r);
  return stall;
}

Counters estimate_phase(const PhaseProfile& profile, double input_bytes,
                        const MemSystemView& mem) {
  Counters c;
  c.input_bytes = input_bytes;
  c.instructions = profile.instr_per_byte * input_bytes;
  const double lines = profile.bytes_per_byte * input_bytes / 64.0;
  c.mem_stall_cycles = lines * expected_stall_per_line(profile, mem);
  // Resource stalls: pressure says how often the back-end saturates; the
  // effect worsens when memory stalls pile up (a full ROB is usually a
  // miss waiting at its head) and relaxes for very regular code.
  const double base = profile.resource_pressure * 0.35 * c.instructions;
  const double mem_coupling = 0.5 * c.mem_stall_cycles;
  c.resource_stall_cycles =
      base * (1.0 - 0.5 * profile.regularity) + mem_coupling * 0.3;
  return c;
}

}  // namespace ramr::perf
