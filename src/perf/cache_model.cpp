#include "perf/cache_model.hpp"

#include <bit>

#include "common/error.hpp"

namespace ramr::perf {

CacheSim::CacheSim(CacheConfig config) : config_(config) {
  if (config_.line_bytes == 0 || !std::has_single_bit(config_.line_bytes)) {
    throw Error("CacheSim: line size must be a power of two");
  }
  if (config_.ways == 0) throw Error("CacheSim: needs >= 1 way");
  const std::size_t sets = config_.num_sets();
  if (sets == 0 || !std::has_single_bit(sets)) {
    throw Error("CacheSim: size/(line*ways) must be a power of two, got " +
                std::to_string(sets) + " sets");
  }
  set_mask_ = sets - 1;
  line_shift_ = static_cast<unsigned>(std::countr_zero(config_.line_bytes));
  ways_.resize(sets * config_.ways);
}

bool CacheSim::access(std::uint64_t address) {
  ++clock_;
  const std::uint64_t line = address >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(line) & set_mask_;
  Way* base = &ways_[set * config_.ways];
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == line) {
      way.lru = clock_;
      ++hits_;
      return true;
    }
  }
  // Miss: victim is the first invalid way, else the least recently used.
  Way* victim = base;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Way& way = base[w];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (way.lru < victim->lru) victim = &way;
  }
  victim->valid = true;
  victim->tag = line;
  victim->lru = clock_;
  ++misses_;
  return false;
}

void CacheSim::flush() {
  for (Way& w : ways_) w.valid = false;
  hits_ = misses_ = 0;
  clock_ = 0;
}

CacheHierarchy::CacheHierarchy(std::vector<CacheConfig> levels) {
  if (levels.empty()) throw Error("CacheHierarchy: needs >= 1 level");
  caches_.reserve(levels.size());
  for (const CacheConfig& c : levels) caches_.emplace_back(c);
}

std::size_t CacheHierarchy::access(std::uint64_t address) {
  for (std::size_t i = 0; i < caches_.size(); ++i) {
    if (caches_[i].access(address)) return i;
  }
  return caches_.size();
}

void CacheHierarchy::flush() {
  for (CacheSim& c : caches_) c.flush();
}

}  // namespace ramr::perf
