// Software performance counters and the paper's three suitability metrics.
//
// Paper Sec. IV-E:
//   ipb  = instructions / input bytes          (workload intensity)
//   mspi = memory stall cycles / instructions  (L1/L2-miss stalls)
//   rspi = resource stall cycles / instructions(full ROB / RS / LSB)
// "All three metrics are only meaningful when used comparatively."
//
// The paper reads hardware PMUs; this reproduction lacks them (and lacks
// the two machines), so Counters are produced by the analytic stall model
// in perf/stall_model.hpp, fed by the per-app workload profiles — the
// substitution preserves the comparative orderings Fig. 10 argues from.
#pragma once

#include <cstdint>
#include <string>

namespace ramr::perf {

struct Counters {
  double instructions = 0.0;
  double mem_stall_cycles = 0.0;       // stalls due to L1/L2 misses
  double resource_stall_cycles = 0.0;  // full ROB, no RS entry, LSB full
  double input_bytes = 0.0;

  double ipb() const {
    return input_bytes > 0.0 ? instructions / input_bytes : 0.0;
  }
  double mspi() const {
    return instructions > 0.0 ? mem_stall_cycles / instructions : 0.0;
  }
  double rspi() const {
    return instructions > 0.0 ? resource_stall_cycles / instructions : 0.0;
  }

  Counters& operator+=(const Counters& o) {
    instructions += o.instructions;
    mem_stall_cycles += o.mem_stall_cycles;
    resource_stall_cycles += o.resource_stall_cycles;
    input_bytes += o.input_bytes;
    return *this;
  }

  std::string summary() const;
};

}  // namespace ramr::perf
