// Per-application workload profiles — the calibration data that drives the
// platform simulator and the Fig. 10 suitability metrics.
//
// Each app is described by a map-phase and a combine-phase profile plus its
// key/value pipeline traffic. The numbers are derived from the structure of
// our implementations (instructions and bytes counted per input byte) and
// cross-checked against the paper's Fig. 10 characterisation; every value
// carries a comment tying it to its source. They are *comparative*
// quantities, exactly as the paper uses them.
#pragma once

#include "apps/flavor.hpp"
#include "apps/suite.hpp"

namespace ramr::perf {

// One side (map or combine) of an application.
struct PhaseProfile {
  double instr_per_byte = 1.0;   // instructions per input byte
  double bytes_per_byte = 1.0;   // memory bytes touched per input byte
  double footprint_bytes = 1e4;  // per-thread working set
  double regularity = 1.0;       // 1 = streaming, 0 = random access
  double resource_pressure = 0.0;  // 0..1 ROB/RS/LSB pressure tendency
};

struct AppProfile {
  const char* name = "?";
  PhaseProfile map;
  PhaseProfile combine;
  double kv_per_byte = 0.1;  // records pipelined per input byte
  double kv_bytes = 16.0;    // size of one pipelined record
  // Producer-to-consumer cache lines moved per record; 0 = derive from
  // kv_bytes. Word Count overrides this: its string_view keys make the
  // combiner dereference the producer-resident text (an extra line).
  double comm_lines_per_kv = 0.0;
  // Bytes of one thread-local intermediate container (sizes the reduce
  // phase's merging and the merge phase's sort; distinct from the combine
  // working set, which also includes the value traffic).
  double container_bytes = 1e4;
};

// Profile for a suite app under a container flavor (paper Figs. 8-10 use
// exactly these twelve combinations).
AppProfile app_profile(apps::AppId app, apps::ContainerFlavor flavor);

}  // namespace ramr::perf
