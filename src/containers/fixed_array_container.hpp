// Thread-local fixed array container.
//
// Phoenix++'s default container for every suite app except Word Count: when
// the key range [0, num_keys) is known a priori (histogram buckets, matrix
// cells, cluster ids), a flat array beats any hash structure — no hash, no
// probing, perfectly regular access (paper Sec. IV-D/IV-E).
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "containers/combiners.hpp"

namespace ramr::containers {

template <typename V, Combiner C>
  requires std::same_as<typename C::value_type, V>
class FixedArrayContainer {
 public:
  using key_type = std::size_t;
  using value_type = V;
  using combiner = C;

  explicit FixedArrayContainer(std::size_t num_keys)
      : values_(num_keys, C::identity()), present_(num_keys, false) {}

  std::size_t capacity() const { return values_.size(); }

  // Number of distinct keys that have received at least one emission.
  std::size_t size() const { return distinct_; }
  bool empty() const { return distinct_ == 0; }

  // Combine `v` into the slot for `key`. Bounds are the app's contract;
  // checked in debug builds only (this is the hottest path in the system).
  void emit(std::size_t key, const V& v) {
#ifndef NDEBUG
    if (key >= values_.size()) {
      throw CapacityError("FixedArrayContainer: key " + std::to_string(key) +
                          " >= capacity " + std::to_string(values_.size()));
    }
#endif
    if (!present_[key]) {
      present_[key] = true;
      ++distinct_;
    }
    C::combine(values_[key], v);
  }

  // Lookup; returns identity for never-emitted keys.
  const V& at(std::size_t key) const { return values_.at(key); }
  bool contains(std::size_t key) const {
    return key < present_.size() && present_[key];
  }

  // Visit present keys in ascending key order: f(key, value).
  template <typename F>
  void for_each(F&& f) const {
    for_each_range(0, values_.size(), f);
  }

  // Ranged iteration for the parallel merge-phase collect: the index space
  // is [0, index_count()); disjoint ranges visit disjoint entries and
  // concatenating them in index order reproduces for_each's order exactly.
  std::size_t index_count() const { return values_.size(); }

  template <typename F>
  void for_each_range(std::size_t lo, std::size_t hi, F&& f) const {
    for (std::size_t k = lo; k < hi; ++k) {
      if (present_[k]) f(k, values_[k]);
    }
  }

  // Fold another container of the same shape into this one (reduce phase).
  void merge_from(const FixedArrayContainer& other) {
    if (other.values_.size() != values_.size()) {
      throw Error("FixedArrayContainer::merge_from: capacity mismatch");
    }
    for (std::size_t k = 0; k < values_.size(); ++k) {
      if (other.present_[k]) {
        if (!present_[k]) {
          present_[k] = true;
          ++distinct_;
        }
        C::combine(values_[k], other.values_[k]);
      }
    }
  }

  void clear() {
    std::fill(values_.begin(), values_.end(), C::identity());
    std::fill(present_.begin(), present_.end(), false);
    distinct_ = 0;
  }

 private:
  std::vector<V> values_;
  std::vector<bool> present_;
  std::size_t distinct_ = 0;
};

}  // namespace ramr::containers
