// Open-addressing hash containers: fixed-size and resizable.
//
// Paper Sec. IV-D: "we replace the containers with fixed-size hash tables in
// HG, KM, LR and WC, and regular hash tables in MM and PCA. The memory
// intensity is increased due to the hash calculation, dynamic memory
// allocation for new keys and non-regular data access." Both variants share
// one open-addressing (linear probing) core; the fixed variant never
// rehashes and throws CapacityError when full, the regular variant grows at
// a 0.7 load factor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "containers/combiners.hpp"

namespace ramr::containers {

namespace detail {

// Mixes the raw std::hash output; libstdc++ hashes integers to themselves,
// which probes terribly for arithmetic key sequences.
inline std::size_t mix_hash(std::size_t h) {
  std::uint64_t z = static_cast<std::uint64_t>(h) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(z ^ (z >> 31));
}

inline std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace detail

// Growable = false: fixed-size hash table (never reallocates after
// construction; emit throws CapacityError once every slot is occupied).
// Growable = true: regular hash table (doubles at load factor > 0.7).
template <typename K, typename V, Combiner C, bool Growable,
          typename Hash = std::hash<K>, typename KeyEq = std::equal_to<K>>
  requires std::same_as<typename C::value_type, V>
class OpenAddressingContainer {
 public:
  using key_type = K;
  using value_type = V;
  using combiner = C;
  static constexpr bool growable = Growable;

  // `expected_keys` sizes the table: slots = next power of two holding
  // expected_keys at <=0.7 load. For the fixed variant this is a hard
  // capacity bound on distinct keys.
  explicit OpenAddressingContainer(std::size_t expected_keys)
      : max_keys_(expected_keys == 0 ? 1 : expected_keys) {
    const std::size_t want =
        (max_keys_ * 10 + 6) / 7;  // ceil(expected / 0.7)
    slots_.resize(detail::round_up_pow2(want < 2 ? 2 : want));
  }

  std::size_t size() const { return occupied_; }
  bool empty() const { return occupied_ == 0; }
  std::size_t slot_count() const { return slots_.size(); }

  void emit(const K& key, const V& v) {
    if constexpr (Growable) {
      // Grow before probing so the probe below always finds a free slot.
      if ((occupied_ + 1) * 10 > slots_.size() * 7) grow();
    }
    Slot& slot = find_slot(slots_, key);
    if (!slot.used) {
      if constexpr (!Growable) {
        if (occupied_ >= max_keys_) {
          throw CapacityError(
              "fixed hash container full: " + std::to_string(max_keys_) +
              " distinct keys");
        }
      }
      slot.used = true;
      slot.key = key;
      slot.value = C::identity();
      ++occupied_;
    }
    C::combine(slot.value, v);
  }

  bool contains(const K& key) const {
    const Slot& slot = find_slot(slots_, key);
    return slot.used;
  }

  // Lookup; throws ramr::Error when absent.
  const V& at(const K& key) const {
    const Slot& slot = find_slot(slots_, key);
    if (!slot.used) throw Error("hash container: key not present");
    return slot.value;
  }

  // Visit all (key, value) pairs; iteration order is unspecified.
  template <typename F>
  void for_each(F&& f) const {
    for_each_range(0, slots_.size(), f);
  }

  // Ranged iteration over the slot array for the parallel merge-phase
  // collect; concatenating disjoint ranges in index order reproduces
  // for_each's order exactly.
  std::size_t index_count() const { return slots_.size(); }

  template <typename F>
  void for_each_range(std::size_t lo, std::size_t hi, F&& f) const {
    for (std::size_t i = lo; i < hi; ++i) {
      const Slot& slot = slots_[i];
      if (slot.used) f(slot.key, slot.value);
    }
  }

  void merge_from(const OpenAddressingContainer& other) {
    other.for_each([&](const K& k, const V& v) { emit(k, v); });
  }

  void clear() {
    for (Slot& slot : slots_) slot.used = false;
    occupied_ = 0;
  }

 private:
  struct Slot {
    bool used = false;
    K key{};
    V value{};
  };

  template <typename Slots>
  static auto& find_slot(Slots& slots, const K& key) {
    const std::size_t mask = slots.size() - 1;
    std::size_t i = detail::mix_hash(Hash{}(key)) & mask;
    for (;;) {
      auto& slot = slots[i];
      if (!slot.used || KeyEq{}(slot.key, key)) return slot;
      i = (i + 1) & mask;
    }
  }

  void grow() {
    std::vector<Slot> bigger(slots_.size() * 2);
    for (Slot& slot : slots_) {
      if (!slot.used) continue;
      Slot& dst = find_slot(bigger, slot.key);
      dst.used = true;
      dst.key = std::move(slot.key);
      dst.value = std::move(slot.value);
    }
    slots_.swap(bigger);
  }

  std::vector<Slot> slots_;
  std::size_t occupied_ = 0;
  std::size_t max_keys_;
};

// Paper terminology aliases.
template <typename K, typename V, Combiner C, typename Hash = std::hash<K>,
          typename KeyEq = std::equal_to<K>>
using FixedHashContainer = OpenAddressingContainer<K, V, C, false, Hash, KeyEq>;

template <typename K, typename V, Combiner C, typename Hash = std::hash<K>,
          typename KeyEq = std::equal_to<K>>
using HashContainer = OpenAddressingContainer<K, V, C, true, Hash, KeyEq>;

}  // namespace ramr::containers
