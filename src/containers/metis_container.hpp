// Metis-style intermediate container (paper Sec. II related work: "Metis
// focused on the container organization and developed an efficient
// data-structure that performs adequately for most applications").
//
// The Metis design: a fixed array of hash buckets, each bucket an ordered
// structure (a b+tree in Metis; a sorted vector here) — insertion costs a
// short binary search, iteration per bucket is ordered, and unlike open
// addressing there is no global rehash, so the emit path never stalls on a
// table-wide reallocation. Included so the container comparison the paper's
// related work implies can actually be run (bench_containers).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "containers/combiners.hpp"
#include "containers/hash_container.hpp"  // detail::mix_hash / round_up_pow2

namespace ramr::containers {

template <typename K, typename V, Combiner C, typename Hash = std::hash<K>,
          typename KeyEq = std::equal_to<K>>
  requires std::same_as<typename C::value_type, V>
class MetisContainer {
 public:
  using key_type = K;
  using value_type = V;
  using combiner = C;

  // `expected_keys` sizes the bucket array for ~8 entries per bucket.
  explicit MetisContainer(std::size_t expected_keys) {
    const std::size_t want = (expected_keys + 7) / 8;
    buckets_.resize(detail::round_up_pow2(want < 1 ? 1 : want));
  }

  std::size_t size() const { return entries_; }
  bool empty() const { return entries_ == 0; }
  std::size_t bucket_count() const { return buckets_.size(); }

  void emit(const K& key, const V& v) {
    Bucket& bucket = bucket_of(key);
    const std::size_t h = detail::mix_hash(Hash{}(key));
    auto it = std::lower_bound(
        bucket.begin(), bucket.end(), std::pair{h, std::cref(key)},
        [](const Entry& e, const auto& probe) {
          if (e.hash != probe.first) return e.hash < probe.first;
          return e.key < probe.second.get();
        });
    if (it != bucket.end() && it->hash == h && KeyEq{}(it->key, key)) {
      C::combine(it->value, v);
      return;
    }
    Entry entry{h, key, C::identity()};
    C::combine(entry.value, v);
    bucket.insert(it, std::move(entry));
    ++entries_;
  }

  bool contains(const K& key) const { return find(key) != nullptr; }

  const V& at(const K& key) const {
    const Entry* e = find(key);
    if (e == nullptr) throw Error("MetisContainer: key not present");
    return e->value;
  }

  template <typename F>
  void for_each(F&& f) const {
    for_each_range(0, buckets_.size(), f);
  }

  // Ranged iteration over the bucket array for the parallel merge-phase
  // collect; concatenating disjoint ranges in index order reproduces
  // for_each's order exactly.
  std::size_t index_count() const { return buckets_.size(); }

  template <typename F>
  void for_each_range(std::size_t lo, std::size_t hi, F&& f) const {
    for (std::size_t b = lo; b < hi; ++b) {
      for (const Entry& e : buckets_[b]) f(e.key, e.value);
    }
  }

  void merge_from(const MetisContainer& other) {
    other.for_each([&](const K& k, const V& v) { emit(k, v); });
  }

  void clear() {
    for (Bucket& b : buckets_) b.clear();
    entries_ = 0;
  }

 private:
  struct Entry {
    std::size_t hash;
    K key;
    V value;
  };
  using Bucket = std::vector<Entry>;

  Bucket& bucket_of(const K& key) {
    return buckets_[detail::mix_hash(Hash{}(key)) & (buckets_.size() - 1)];
  }
  const Bucket& bucket_of(const K& key) const {
    return buckets_[detail::mix_hash(Hash{}(key)) & (buckets_.size() - 1)];
  }

  const Entry* find(const K& key) const {
    const Bucket& bucket = bucket_of(key);
    const std::size_t h = detail::mix_hash(Hash{}(key));
    auto it = std::lower_bound(
        bucket.begin(), bucket.end(), std::pair{h, std::cref(key)},
        [](const Entry& e, const auto& probe) {
          if (e.hash != probe.first) return e.hash < probe.first;
          return e.key < probe.second.get();
        });
    if (it != bucket.end() && it->hash == h && KeyEq{}(it->key, key)) {
      return &*it;
    }
    return nullptr;
  }

  std::vector<Bucket> buckets_;
  std::size_t entries_ = 0;
};

}  // namespace ramr::containers
