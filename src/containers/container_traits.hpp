// The intermediate-container concept both runtimes program against, and the
// key/value record type that flows through the RAMR pipeline.
//
// "Containers interface the map phase output with the reduce phase input and
// are responsible for grouping by key the emitted key-value pairs" (paper
// Sec. II). Any type satisfying IntermediateContainer can be plugged into
// either runtime — the suite apps switch between the fixed array, fixed
// hash, and regular hash variants exactly as the paper's Figs. 8-10 do.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <utility>
#include <vector>

namespace ramr::containers {

template <typename Ct>
concept IntermediateContainer = requires(
    Ct& c, const Ct& cc, const typename Ct::key_type& k,
    const typename Ct::value_type& v) {
  typename Ct::key_type;
  typename Ct::value_type;
  typename Ct::combiner;
  { c.emit(k, v) };
  { cc.size() } -> std::convertible_to<std::size_t>;
  { cc.for_each([](const typename Ct::key_type&,
                   const typename Ct::value_type&) {}) };
  { c.merge_from(cc) };
  { c.clear() };
};

// The record type pipelined from mappers to combiners through the SPSC
// rings. Kept as an aggregate so that trivially copyable key/value types
// make the whole record trivially copyable (the ring then moves raw bytes).
template <typename K, typename V>
struct KeyValue {
  K key;
  V value;

  bool operator==(const KeyValue&) const = default;
};

// Flattens a container into (key, value) pairs in container order (the
// runtimes sort afterwards on their worker pool).
template <IntermediateContainer Ct>
std::vector<std::pair<typename Ct::key_type, typename Ct::value_type>>
to_pairs(const Ct& container) {
  std::vector<std::pair<typename Ct::key_type, typename Ct::value_type>> out;
  out.reserve(container.size());
  container.for_each([&](const auto& k, const auto& v) {
    out.emplace_back(k, v);
  });
  return out;
}

// Flattens and key-sorts — the merge phase's output representation shared
// by both runtimes (serial; the runtimes use to_pairs + parallel_sort).
template <IntermediateContainer Ct>
std::vector<std::pair<typename Ct::key_type, typename Ct::value_type>>
to_sorted_pairs(const Ct& container) {
  auto out = to_pairs(container);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace ramr::containers
