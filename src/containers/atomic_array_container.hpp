// Globally shared, atomically accessed fixed-array container — the MRPhi
// design (paper Sec. II: "due to the limited memory resources, an
// atomically-accessed global container was favored instead of thread-local
// containers").
//
// One array for ALL workers: emit() is a relaxed atomic fetch-op on the
// key's slot, so no per-thread memory or reduce-phase merging is needed —
// at the price of coherence contention on hot keys. Usable only for value
// types with a lock-free atomic fetch operation; `AtomicOp` adapts the
// combiner (kAdd covers Sum/Count, kMin/kMax the extrema combiners).
#pragma once

#include <atomic>
#include <cstddef>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "common/cacheline.hpp"
#include "common/error.hpp"

namespace ramr::containers {

enum class AtomicOp { kAdd, kMin, kMax };

template <typename V, AtomicOp Op = AtomicOp::kAdd>
  requires std::is_integral_v<V>
class AtomicArrayContainer {
 public:
  using key_type = std::size_t;
  using value_type = V;
  // Exposed so the sharded variant (sharded_atomic_container.hpp) can be
  // instantiated from an app's container_type alone.
  static constexpr AtomicOp kOp = Op;

  explicit AtomicArrayContainer(std::size_t num_keys)
      : slots_(num_keys) {
    clear();
  }

  std::size_t capacity() const { return slots_.size(); }

  // Thread-safe: any number of workers may emit concurrently.
  void emit(std::size_t key, V value) {
#ifndef NDEBUG
    if (key >= slots_.size()) {
      throw CapacityError("AtomicArrayContainer: key " + std::to_string(key) +
                          " >= capacity " + std::to_string(slots_.size()));
    }
#endif
    std::atomic<V>& slot = slots_[key].value;
    if constexpr (Op == AtomicOp::kAdd) {
      slot.fetch_add(value, std::memory_order_relaxed);
    } else if constexpr (Op == AtomicOp::kMin) {
      V current = slot.load(std::memory_order_relaxed);
      while (value < current &&
             !slot.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
      }
    } else {
      V current = slot.load(std::memory_order_relaxed);
      while (current < value &&
             !slot.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
      }
    }
  }

  V at(std::size_t key) const {
    return slots_.at(key).value.load(std::memory_order_relaxed);
  }

  // Visits every slot whose value differs from the identity, in key order.
  // Only meaningful after the emitting phase quiesced.
  template <typename F>
  void for_each(F&& f) const {
    for_each_range(0, slots_.size(), f);
  }

  // Ranged iteration for the parallel merge-phase collect; same quiescence
  // contract as for_each.
  std::size_t index_count() const { return slots_.size(); }

  template <typename F>
  void for_each_range(std::size_t lo, std::size_t hi, F&& f) const {
    for (std::size_t k = lo; k < hi; ++k) {
      const V v = slots_[k].value.load(std::memory_order_relaxed);
      if (v != identity()) f(k, v);
    }
  }

  std::size_t size() const {
    std::size_t n = 0;
    for_each([&n](std::size_t, V) { ++n; });
    return n;
  }

  void clear() {
    for (auto& slot : slots_) {
      slot.value.store(identity(), std::memory_order_relaxed);
    }
  }

  static constexpr V identity() {
    if constexpr (Op == AtomicOp::kAdd) {
      return V{};
    } else if constexpr (Op == AtomicOp::kMin) {
      return std::numeric_limits<V>::max();
    } else {
      return std::numeric_limits<V>::lowest();
    }
  }

 private:
  // One slot per cache line would waste memory for wide key ranges; MRPhi
  // accepts false sharing on the global array, and so do we — that IS the
  // design being reproduced.
  struct Slot {
    std::atomic<V> value{};
  };
  std::vector<Slot> slots_;
};

}  // namespace ramr::containers
