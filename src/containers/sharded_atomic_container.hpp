// Radix-sharded variant of AtomicArrayContainer (RAMR_ATOMIC_SHARDS).
//
// The single global array is the MRPhi design being reproduced — and its
// known scaling cliff: every worker's fetch-ops target the same few cache
// lines, so HG/LR-class workloads serialize on coherence traffic once more
// than a handful of threads emit. This container keeps the same external
// contract (a-priori key range, relaxed fetch-op emits, ranged read-out for
// the two-pass collect) but splits the storage into 2^k shard sub-arrays,
// each padded and aligned to cache-line boundaries in one flat allocation.
// A worker emits into the shard derived from its worker index by radix mask
// (worker & (shards-1)), so hot keys contend only within a shard's worker
// subset; the collect-side view merges the per-shard slots per key with the
// combiner's fold, which keeps output content and order identical to the
// single-container baseline.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <string>
#include <type_traits>

#include "common/cacheline.hpp"
#include "common/error.hpp"
#include "containers/atomic_array_container.hpp"

namespace ramr::containers {

template <typename V, AtomicOp Op = AtomicOp::kAdd>
  requires std::is_integral_v<V>
class ShardedAtomicContainer {
 public:
  using key_type = std::size_t;
  using value_type = V;
  static constexpr AtomicOp kOp = Op;

  // `num_shards` must be a power of two (the emit path masks, it does not
  // divide); engine::resolve_atomic_shards guarantees that for the env
  // knob, and the constructor enforces it for direct users.
  ShardedAtomicContainer(std::size_t num_keys, std::size_t num_shards)
      : num_keys_(num_keys), num_shards_(num_shards) {
    if (num_shards_ == 0 || (num_shards_ & (num_shards_ - 1)) != 0) {
      throw ConfigError("ShardedAtomicContainer: shard count " +
                        std::to_string(num_shards_) +
                        " is not a power of two");
    }
    // Round each shard's sub-array up to whole cache lines so no line is
    // shared between shards (the false sharing *within* a shard stays, as
    // in the baseline container — that is the design being reproduced).
    const std::size_t line_slots = kCacheLineSize / sizeof(Slot);
    stride_ = ((num_keys_ + line_slots - 1) / line_slots) * line_slots;
    if (stride_ == 0) stride_ = line_slots;
    const std::size_t count = stride_ * num_shards_;
    // Raw aligned allocation + placement-new so construction and the
    // aligned deallocation function are exactly paired (no array-new
    // cookie to worry about; Slot is trivially destructible).
    slots_.reset(static_cast<Slot*>(::operator new[](
        count * sizeof(Slot), std::align_val_t{kCacheLineSize})));
    for (std::size_t i = 0; i < count; ++i) new (&slots_[i]) Slot();
    clear();
  }

  std::size_t capacity() const { return num_keys_; }
  std::size_t shard_count() const { return num_shards_; }

  // Thread-safe; `shard` is typically worker & (shard_count() - 1).
  void emit(std::size_t shard, std::size_t key, V value) {
#ifndef NDEBUG
    if (key >= num_keys_) {
      throw CapacityError("ShardedAtomicContainer: key " +
                          std::to_string(key) + " >= capacity " +
                          std::to_string(num_keys_));
    }
#endif
    std::atomic<V>& slot = slots_[(shard & (num_shards_ - 1)) * stride_ + key]
                               .value;
    if constexpr (Op == AtomicOp::kAdd) {
      slot.fetch_add(value, std::memory_order_relaxed);
    } else if constexpr (Op == AtomicOp::kMin) {
      V current = slot.load(std::memory_order_relaxed);
      while (value < current &&
             !slot.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
      }
    } else {
      V current = slot.load(std::memory_order_relaxed);
      while (current < value &&
             !slot.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
      }
    }
  }

  // Cross-shard merged value of one key (read-out helper; same quiescence
  // contract as for_each).
  V at(std::size_t key) const {
    V acc = identity();
    for (std::size_t s = 0; s < num_shards_; ++s) {
      fold(acc, slots_[s * stride_ + key].value.load(
                    std::memory_order_relaxed));
    }
    return acc;
  }

  // Merged RangedContainer view for the two-pass parallel collect: the key
  // space it exposes is the logical one, each visit folding the per-shard
  // slots — so collect_pairs produces exactly what the single-container
  // baseline produces.
  std::size_t index_count() const { return num_keys_; }

  template <typename F>
  void for_each_range(std::size_t lo, std::size_t hi, F&& f) const {
    for (std::size_t k = lo; k < hi; ++k) {
      V acc = identity();
      for (std::size_t s = 0; s < num_shards_; ++s) {
        fold(acc, slots_[s * stride_ + k].value.load(
                      std::memory_order_relaxed));
      }
      if (acc != identity()) f(k, acc);
    }
  }

  template <typename F>
  void for_each(F&& f) const {
    for_each_range(0, num_keys_, f);
  }

  std::size_t size() const {
    std::size_t n = 0;
    for_each([&n](std::size_t, V) { ++n; });
    return n;
  }

  void clear() {
    for (std::size_t i = 0; i < stride_ * num_shards_; ++i) {
      slots_[i].value.store(identity(), std::memory_order_relaxed);
    }
  }

  static constexpr V identity() {
    return AtomicArrayContainer<V, Op>::identity();
  }

 private:
  static void fold(V& acc, V v) {
    if constexpr (Op == AtomicOp::kAdd) {
      acc += v;
    } else if constexpr (Op == AtomicOp::kMin) {
      if (v < acc) acc = v;
    } else {
      if (acc < v) acc = v;
    }
  }

  struct Slot {
    std::atomic<V> value{};
  };
  static_assert(std::is_trivially_destructible_v<std::atomic<V>>);
  struct AlignedDelete {
    void operator()(Slot* p) const {
      ::operator delete[](p, std::align_val_t{kCacheLineSize});
    }
  };

  std::size_t num_keys_;
  std::size_t num_shards_;
  std::size_t stride_ = 0;  // slots per shard, whole cache lines
  std::unique_ptr<Slot[], AlignedDelete> slots_;
};

}  // namespace ramr::containers
