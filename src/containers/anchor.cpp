// Anchor translation unit: instantiates each container template once so the
// headers are known to compile stand-alone.
#include <string>

#include "containers/container_traits.hpp"
#include "containers/fixed_array_container.hpp"
#include "containers/hash_container.hpp"

namespace ramr::containers {

template class FixedArrayContainer<std::uint64_t, CountCombiner>;
template class OpenAddressingContainer<std::string, std::uint64_t,
                                       CountCombiner, false>;
template class OpenAddressingContainer<std::string, std::uint64_t,
                                       CountCombiner, true>;

static_assert(
    IntermediateContainer<FixedArrayContainer<std::uint64_t, CountCombiner>>);
static_assert(IntermediateContainer<
              FixedHashContainer<std::string, std::uint64_t, CountCombiner>>);
static_assert(IntermediateContainer<
              HashContainer<std::string, std::uint64_t, CountCombiner>>);

}  // namespace ramr::containers
