// Combining functors — the associative/commutative "partial reduce" applied
// when a key/value pair lands in an intermediate container.
//
// Phoenix Rebirth introduced combiners; Phoenix++ applies the combine
// function after every map emission. RAMR keeps the same combiner concept
// but runs it on dedicated combiner threads (paper Sec. III).
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>

namespace ramr::containers {

// A Combiner provides the monoid (identity, combine) for its value type.
// combine must be associative and commutative: the reduce phase merges
// per-thread containers in nondeterministic order.
template <typename C>
concept Combiner = requires(typename C::value_type& acc,
                            const typename C::value_type& v) {
  { C::identity() } -> std::convertible_to<typename C::value_type>;
  { C::combine(acc, v) };
};

template <typename T>
struct SumCombiner {
  using value_type = T;
  static constexpr T identity() { return T{}; }
  static constexpr void combine(T& acc, const T& v) { acc += v; }
};

// Counting occurrences: Word Count / Histogram emit value 1 per element.
using CountCombiner = SumCombiner<std::uint64_t>;

template <typename T>
struct MinCombiner {
  using value_type = T;
  static constexpr T identity() { return std::numeric_limits<T>::max(); }
  static constexpr void combine(T& acc, const T& v) {
    if (v < acc) acc = v;
  }
};

template <typename T>
struct MaxCombiner {
  using value_type = T;
  static constexpr T identity() { return std::numeric_limits<T>::lowest(); }
  static constexpr void combine(T& acc, const T& v) {
    if (acc < v) acc = v;
  }
};

// For struct-valued accumulators (KMeans centroid sums, Linear Regression
// moment sums, PCA covariance sums): T must be default-constructible to its
// identity and expose merge(const T&).
template <typename T>
  requires requires(T& a, const T& b) { a.merge(b); }
struct MergeCombiner {
  using value_type = T;
  static constexpr T identity() { return T{}; }
  static constexpr void combine(T& acc, const T& v) { acc.merge(v); }
};

static_assert(Combiner<SumCombiner<int>>);
static_assert(Combiner<CountCombiner>);
static_assert(Combiner<MinCombiner<double>>);
static_assert(Combiner<MaxCombiner<double>>);

}  // namespace ramr::containers
